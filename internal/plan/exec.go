package plan

import (
	"math"
	"sort"

	"vita/internal/colstore"
	"vita/internal/trajectory"
)

// batchCols is the owned output scratch of a materializing operator: a
// trajectory batch plus (when the operator produces one) a Val column,
// reused across Next calls.
type batchCols struct {
	traj   colstore.TrajectoryBatch
	val    []float64
	useVal bool
	out    Batch
}

func (bc *batchCols) reset(useVal bool) {
	bc.traj.Reset()
	bc.val = bc.val[:0]
	bc.useVal = useVal
}

func (bc *batchCols) appendRow(s trajectory.Sample, val float64) {
	bc.traj.Append(s)
	if bc.useVal {
		bc.val = append(bc.val, val)
	}
}

func (bc *batchCols) len() int { return bc.traj.Len() }

func (bc *batchCols) batch() *Batch {
	bc.out.Traj = &bc.traj
	if bc.useVal {
		bc.out.Val = bc.val
	} else {
		bc.out.Val = nil
	}
	return &bc.out
}

// addStats sums two scan-stat records field-wise (multi-leaf plans).
func addStats(a, b colstore.ScanStats) colstore.ScanStats {
	return colstore.ScanStats{
		BlocksTotal:   a.BlocksTotal + b.BlocksTotal,
		BlocksScanned: a.BlocksScanned + b.BlocksScanned,
		BlocksPruned:  a.BlocksPruned + b.BlocksPruned,
		RowsScanned:   a.RowsScanned + b.RowsScanned,
		RowsMatched:   a.RowsMatched + b.RowsMatched,
	}
}

// --- Scan ---

// scanOp is the leaf: it opens its Source lazily on first Next with the
// planner's pushed-down predicate and forwards the cursor's batches.
type scanOp struct {
	src    Source
	pred   colstore.Predicate
	cur    TrajectoryCursor
	opened bool
	b      Batch
	stats  colstore.ScanStats
	err    error
}

func newScanOp(src Source, pred colstore.Predicate) *scanOp {
	return &scanOp{src: src, pred: pred}
}

func (s *scanOp) Next() bool {
	if s.err != nil {
		return false
	}
	if !s.opened {
		s.opened = true
		cur, err := s.src.Open(s.pred)
		if err != nil {
			s.err = err
			return false
		}
		s.cur = cur
	}
	if s.cur == nil {
		return false
	}
	if !s.cur.Next() {
		s.err = s.cur.Err()
		return false
	}
	s.b.Traj = s.cur.Batch()
	s.b.Val = nil
	return true
}

func (s *scanOp) Batch() *Batch { return &s.b }
func (s *scanOp) Err() error    { return s.err }

func (s *scanOp) Stats() colstore.ScanStats {
	if s.cur != nil {
		return s.cur.Stats()
	}
	return s.stats
}

func (s *scanOp) Close() error {
	if s.cur != nil {
		s.stats = s.cur.Stats()
		if cerr := s.cur.Close(); s.err == nil {
			s.err = cerr
		}
		s.cur = nil
	}
	return s.err
}

// --- Filter (+ fused Project) ---

// filterProjectOp runs residual row predicates and column projection in one
// pass over each batch — the planner's filter+project fusion. Either half
// may be absent (nil preds = pure project, zero keep mask = pure filter).
type filterProjectOp struct {
	child Operator
	preds []Pred
	keep  colMask // 0 = keep all columns
	bc    batchCols
}

func newFilterProjectOp(child Operator, preds []Pred, project []Col) Operator {
	return &filterProjectOp{child: child, preds: preds, keep: maskOf(project)}
}

// projectRow zeroes the dropped columns of a materialized row. A point
// survives only if both coordinate columns are kept.
func (f *filterProjectOp) projectRow(s trajectory.Sample) trajectory.Sample {
	if f.keep == 0 {
		return s
	}
	var out trajectory.Sample
	if f.keep.has(ColObjID) {
		out.ObjID = s.ObjID
	}
	if f.keep.has(ColBuilding) {
		out.Loc.Building = s.Loc.Building
	}
	if f.keep.has(ColFloor) {
		out.Loc.Floor = s.Loc.Floor
	}
	if f.keep.has(ColPartition) {
		out.Loc.Partition = s.Loc.Partition
	}
	if f.keep.has(ColX) && f.keep.has(ColY) {
		out.Loc.Point = s.Loc.Point
		out.Loc.HasPoint = s.Loc.HasPoint
	}
	if f.keep.has(ColT) {
		out.T = s.T
	}
	return out
}

func (f *filterProjectOp) Next() bool {
	for f.child.Next() {
		in := f.child.Batch()
		useVal := in.Val != nil && f.keep.has(ColVal)
		f.bc.reset(useVal)
	rows:
		for i := 0; i < in.Len(); i++ {
			s := in.Traj.Row(i)
			for _, p := range f.preds {
				if !p.match(s) {
					continue rows
				}
			}
			var v float64
			if useVal && i < len(in.Val) {
				v = in.Val[i]
			}
			f.bc.appendRow(f.projectRow(s), v)
		}
		if f.bc.len() > 0 {
			return true
		}
	}
	return false
}

func (f *filterProjectOp) Batch() *Batch             { return f.bc.batch() }
func (f *filterProjectOp) Err() error                { return f.child.Err() }
func (f *filterProjectOp) Stats() colstore.ScanStats { return f.child.Stats() }
func (f *filterProjectOp) Close() error              { return f.child.Close() }

// --- TimeBucket ---

// timeBucketOp rewrites T to the start of its bucket. Only the T column is
// copied; every other column aliases the child's batch (operators never
// mutate input, so sharing is safe).
type timeBucketOp struct {
	child Operator
	width float64
	t     []float64
	traj  colstore.TrajectoryBatch
	out   Batch
}

func newTimeBucketOp(child Operator, width float64) Operator {
	return &timeBucketOp{child: child, width: width}
}

func (tb *timeBucketOp) Next() bool {
	if !tb.child.Next() {
		return false
	}
	in := tb.child.Batch()
	tb.t = tb.t[:0]
	for _, t := range in.Traj.T {
		tb.t = append(tb.t, math.Floor(t/tb.width)*tb.width)
	}
	tb.traj = *in.Traj
	tb.traj.T = tb.t
	tb.out.Traj = &tb.traj
	tb.out.Val = in.Val
	return true
}

func (tb *timeBucketOp) Batch() *Batch             { return &tb.out }
func (tb *timeBucketOp) Err() error                { return tb.child.Err() }
func (tb *timeBucketOp) Stats() colstore.ScanStats { return tb.child.Stats() }
func (tb *timeBucketOp) Close() error              { return tb.child.Close() }

// --- Derive ---

// DeriveFunc computes the Val column for one batch: dst is pre-sized to the
// batch's row count and zeroed; the function fills it from the batch's
// columns. Implementations may keep state across calls (batches arrive in
// stream order), but must not mutate the batch.
type DeriveFunc func(dst []float64, b *Batch)

// deriveOp attaches a computed Val column to each batch; the trajectory
// columns pass through by reference.
type deriveOp struct {
	child Operator
	fn    DeriveFunc
	val   []float64
	out   Batch
}

func newDeriveOp(child Operator, fn DeriveFunc) Operator {
	return &deriveOp{child: child, fn: fn}
}

func (d *deriveOp) Next() bool {
	if !d.child.Next() {
		return false
	}
	in := d.child.Batch()
	n := in.Len()
	if cap(d.val) < n {
		d.val = make([]float64, n)
	}
	d.val = d.val[:n]
	for i := range d.val {
		d.val[i] = 0
	}
	d.fn(d.val, in)
	d.out.Traj = in.Traj
	d.out.Val = d.val
	return true
}

func (d *deriveOp) Batch() *Batch             { return &d.out }
func (d *deriveOp) Err() error                { return d.child.Err() }
func (d *deriveOp) Stats() colstore.ScanStats { return d.child.Stats() }
func (d *deriveOp) Close() error              { return d.child.Close() }

// DwellGaps returns a DeriveFunc that assigns each row the seconds since the
// same object's previous sample, when that gap is positive, at most maxGap,
// and spent in the same partition — i.e. the dwell time the row's partition
// earns from the preceding interval. Rows that open a visit (object change,
// partition change, or a gap beyond maxGap) get 0. Requires rows ordered by
// (object, time); compose after OrderBy(Asc(ColObjID), Asc(ColT)).
func DwellGaps(maxGap float64) DeriveFunc {
	var (
		have     bool
		prevObj  int64
		prevPart string
		prevT    float64
	)
	return func(dst []float64, b *Batch) {
		tr := b.Traj
		for i := 0; i < tr.Len(); i++ {
			if have && tr.ObjID[i] == prevObj && tr.Partition[i] == prevPart {
				if dt := tr.T[i] - prevT; dt > 0 && dt <= maxGap {
					dst[i] = dt
				}
			}
			have = true
			prevObj, prevPart, prevT = tr.ObjID[i], tr.Partition[i], tr.T[i]
		}
	}
}

// --- OrderBy ---

// SortKey is one OrderBy key: a column and a direction.
type SortKey struct {
	Col  Col
	Desc bool
}

// Asc sorts ascending by c.
func Asc(c Col) SortKey { return SortKey{Col: c} }

// Desc sorts descending by c.
func Desc(c Col) SortKey { return SortKey{Col: c, Desc: true} }

// orderByOp is the blocking sort: it drains the child into an owned buffer
// on first Next, stable-sorts by the keys, and emits one output batch.
type orderByOp struct {
	child Operator
	keys  []SortKey
	built bool
	done  bool
	rows  []Row
	bc    batchCols
}

func newOrderByOp(child Operator, keys []SortKey) Operator {
	return &orderByOp{child: child, keys: keys}
}

func (o *orderByOp) build() bool {
	o.built = true
	useVal := false
	for o.child.Next() {
		in := o.child.Batch()
		if in.Val != nil {
			useVal = true
		}
		for i := 0; i < in.Len(); i++ {
			r := Row{Sample: in.Traj.Row(i)}
			if i < len(in.Val) {
				r.Val = in.Val[i]
			}
			o.rows = append(o.rows, r)
		}
	}
	if o.child.Err() != nil {
		return false
	}
	sort.SliceStable(o.rows, func(i, j int) bool {
		a, b := o.rows[i], o.rows[j]
		for _, k := range o.keys {
			c := sampleColCompare(a.Sample, a.Val, b.Sample, b.Val, k.Col)
			if c == 0 {
				continue
			}
			return (c < 0) != k.Desc
		}
		return false
	})
	o.bc.reset(useVal)
	for _, r := range o.rows {
		o.bc.appendRow(r.Sample, r.Val)
	}
	o.rows = nil
	return o.bc.len() > 0
}

func (o *orderByOp) Next() bool {
	if o.done {
		return false
	}
	o.done = true
	if !o.built {
		return o.build()
	}
	return false
}

func (o *orderByOp) Batch() *Batch             { return o.bc.batch() }
func (o *orderByOp) Err() error                { return o.child.Err() }
func (o *orderByOp) Stats() colstore.ScanStats { return o.child.Stats() }
func (o *orderByOp) Close() error              { return o.child.Close() }

// --- Limit ---

// limitOp stops after n rows. It never copies: a partial final batch is a
// re-sliced view of the child's batch (slicing shortens the view without
// touching the shared backing arrays).
type limitOp struct {
	child     Operator
	remaining int
	traj      colstore.TrajectoryBatch
	out       Batch
}

func newLimitOp(child Operator, n int) Operator {
	return &limitOp{child: child, remaining: n}
}

func (l *limitOp) Next() bool {
	if l.remaining <= 0 {
		return false
	}
	if !l.child.Next() {
		return false
	}
	in := l.child.Batch()
	n := in.Len()
	if n <= l.remaining {
		l.remaining -= n
		l.out = *in
		return true
	}
	k := l.remaining
	l.remaining = 0
	tr := in.Traj
	l.traj = colstore.TrajectoryBatch{
		ObjID:     tr.ObjID[:k],
		Building:  tr.Building[:k],
		Floor:     tr.Floor[:k],
		Partition: tr.Partition[:k],
		X:         tr.X[:k],
		Y:         tr.Y[:k],
		T:         tr.T[:k],
		HasPoint:  tr.HasPoint[:k],
	}
	l.out.Traj = &l.traj
	if in.Val != nil {
		l.out.Val = in.Val[:min(k, len(in.Val))]
	} else {
		l.out.Val = nil
	}
	return true
}

func (l *limitOp) Batch() *Batch             { return &l.out }
func (l *limitOp) Err() error                { return l.child.Err() }
func (l *limitOp) Stats() colstore.ScanStats { return l.child.Stats() }
func (l *limitOp) Close() error              { return l.child.Close() }
