package plan

import (
	"fmt"
	"strings"
	"time"

	"vita/internal/colstore"
	"vita/internal/obs"
)

// traceOp wraps one physical operator and records its work onto a span:
// batches and rows produced, inclusive wall time (its own work plus
// everything below it, the EXPLAIN ANALYZE convention), and — for scan
// leaves — the cursor's pruning stats, captured at Close before the cursor
// is released. Only CompileTraced inserts traceOps; the untraced Compile
// path never sees them, so tracing costs nothing when it is off.
type traceOp struct {
	child Operator
	span  *obs.Span
	scan  bool
}

func newTraceOp(child Operator, span *obs.Span, scan bool) *traceOp {
	return &traceOp{child: child, span: span, scan: scan}
}

func (t *traceOp) Next() bool {
	start := time.Now()
	ok := t.child.Next()
	t.span.AddWall(time.Since(start))
	if ok {
		t.span.Batches++
		t.span.Rows += t.child.Batch().Len()
	}
	return ok
}

func (t *traceOp) Batch() *Batch             { return t.child.Batch() }
func (t *traceOp) Err() error                { return t.child.Err() }
func (t *traceOp) Stats() colstore.ScanStats { return t.child.Stats() }

func (t *traceOp) Close() error {
	start := time.Now()
	err := t.child.Close()
	t.span.AddWall(time.Since(start))
	if t.scan {
		st := t.child.Stats()
		t.span.BlocksTotal = st.BlocksTotal
		t.span.BlocksPruned = st.BlocksPruned
		t.span.BlocksScanned = st.BlocksScanned
		t.span.RowsScanned = st.RowsScanned
		t.span.RowsMatched = st.RowsMatched
	}
	return err
}

// predDetail summarizes a pushed-down scan predicate for the span's detail
// field ("t∈[540,600] floor=3"); empty when nothing was pushed.
func predDetail(p colstore.Predicate) string {
	var parts []string
	if p.HasTime {
		parts = append(parts, fmt.Sprintf("t∈[%g,%g]", p.T0, p.T1))
	}
	if p.HasFloor {
		parts = append(parts, fmt.Sprintf("floor=%d", p.Floor))
	}
	if p.HasBox {
		parts = append(parts, fmt.Sprintf("box=[%g,%g]×[%g,%g]", p.Box.Min.X, p.Box.Max.X, p.Box.Min.Y, p.Box.Max.Y))
	}
	if p.HasObj {
		parts = append(parts, fmt.Sprintf("obj=%d", p.Obj))
	}
	return strings.Join(parts, " ")
}

// fpName names a fused filter/project operator by which halves are present.
func fpName(preds []Pred, project []Col) string {
	switch {
	case len(preds) > 0 && len(project) > 0:
		return "Filter+Project"
	case len(preds) > 0:
		return "Filter"
	default:
		return "Project"
	}
}

// colList renders a column list for span details ("partition,t").
func colList(cols []Col) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// sortKeyList renders OrderBy keys for span details ("obj asc,t desc").
func sortKeyList(keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = k.Col.String() + " " + dir
	}
	return strings.Join(parts, ",")
}

// fpDetail summarizes a filter/project operator: residual predicate count
// and kept columns.
func fpDetail(preds []Pred, project []Col) string {
	var parts []string
	if len(preds) > 0 {
		parts = append(parts, fmt.Sprintf("%d residual pred(s)", len(preds)))
	}
	if len(project) > 0 {
		cols := make([]string, len(project))
		for i, c := range project {
			cols[i] = c.String()
		}
		parts = append(parts, "keep "+strings.Join(cols, ","))
	}
	return strings.Join(parts, "; ")
}
