package plan

import (
	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/trajectory"
)

// predKind discriminates the structured filter predicates the planner can
// reason about. Structured predicates push down into the scan's block
// predicate (and from there into zone-map pruning); Where predicates are
// opaque and always evaluate as residual row filters.
type predKind int

const (
	predTime predKind = iota
	predFloor
	predBox
	predObj
	predWhere
)

// Pred is one conjunct of a Filter. Build them with TimeBetween, OnFloor,
// InBox, ObjEq, or Where; a Filter with several Preds matches rows
// satisfying all of them.
type Pred struct {
	kind   predKind
	t0, t1 float64
	floor  int
	box    geom.BBox
	obj    int
	where  func(trajectory.Sample) bool
}

// TimeBetween matches rows with t0 <= T <= t1.
func TimeBetween(t0, t1 float64) Pred { return Pred{kind: predTime, t0: t0, t1: t1} }

// OnFloor matches rows on exactly the given floor.
func OnFloor(floor int) Pred { return Pred{kind: predFloor, floor: floor} }

// InBox matches coordinate rows whose point lies in box; symbolic rows
// (no point) never match, mirroring colstore.Predicate box semantics.
func InBox(box geom.BBox) Pred { return Pred{kind: predBox, box: box} }

// ObjEq matches rows of a single object.
func ObjEq(obj int) Pred { return Pred{kind: predObj, obj: obj} }

// Where matches rows for which fn returns true. Opaque to the planner: it
// never pushes down, so use the structured predicates when one fits.
func Where(fn func(trajectory.Sample) bool) Pred { return Pred{kind: predWhere, where: fn} }

// match evaluates the predicate against one row, with semantics identical to
// colstore.Predicate.MatchTrajectory for the structured kinds — pushing a
// predicate down must never change which rows survive.
func (p Pred) match(s trajectory.Sample) bool {
	switch p.kind {
	case predTime:
		return s.T >= p.t0 && s.T <= p.t1
	case predFloor:
		return s.Loc.Floor == p.floor
	case predBox:
		return s.Loc.HasPoint && p.box.Contains(s.Loc.Point)
	case predObj:
		return s.ObjID == p.obj
	default:
		return p.where(s)
	}
}

// pushInto attempts to fold the predicate into the scan's block predicate.
// It reports whether the fold succeeded; on false the predicate must remain
// a residual row filter. A structured kind folds only into an unclaimed slot
// (or intersects, for time windows — the conjunction of two windows is a
// window); claimed floor/box/obj slots refuse rather than approximate, so
// pushdown is always exact.
func (p Pred) pushInto(cp *colstore.Predicate) bool {
	switch p.kind {
	case predTime:
		if !cp.HasTime {
			cp.HasTime, cp.T0, cp.T1 = true, p.t0, p.t1
			return true
		}
		// Intersect windows; an empty intersection is fine — the scan
		// just prunes everything.
		if p.t0 > cp.T0 {
			cp.T0 = p.t0
		}
		if p.t1 < cp.T1 {
			cp.T1 = p.t1
		}
		return true
	case predFloor:
		if cp.HasFloor {
			return cp.Floor == p.floor
		}
		cp.HasFloor, cp.Floor = true, p.floor
		return true
	case predBox:
		if cp.HasBox {
			return false
		}
		cp.HasBox, cp.Box = true, p.box
		return true
	case predObj:
		if cp.HasObj {
			return cp.Obj == p.obj
		}
		cp.HasObj, cp.Obj = true, p.obj
		return true
	default:
		return false
	}
}
