// Package plan is Vita's vectorized query-operator algebra: a volcano-style
// iterator layer where every operator consumes and yields column batches
// (colstore.TrajectoryBatch, optionally extended with one derived float
// column), so arbitrary analytics compose from a small operator vocabulary
// instead of being hand-coded endpoints.
//
// The operators are the classical relational set specialized to trajectory
// data:
//
//   - Scan — the leaf; pulls batches from a Source (a VTB/CSV file, a live
//     multi-segment dataset, an in-memory slice) under a pushed-down
//     colstore.Predicate, so zone maps prune whole blocks before decode;
//   - Filter — row predicates (time window, floor, box, object, or custom);
//   - Project — keep a column subset, zeroing the rest;
//   - TimeBucket — align each row's timestamp to its bucket start, the key
//     for time-grouped aggregation and temporal joins;
//   - Derive — compute the Val column from each batch (e.g. DwellGaps);
//   - Aggregate — hash aggregation (count/sum/min/max/avg) grouped by any
//     column subset, emitted in deterministic key order;
//   - OrderBy — blocking sort by column keys;
//   - Limit — stop after n rows;
//   - Join — hash equi-join of two plans on column keys (e.g. partition ×
//     time bucket for contact-tracing-style co-location queries).
//
// A Plan is the logical operator chain, built fluently:
//
//	p := plan.NewScan(src).
//		Filter(plan.TimeBetween(0, 600), plan.OnFloor(1)).
//		Aggregate(plan.By(plan.ColPartition), plan.CountInto(plan.ColVal))
//	c, err := p.Compile()
//
// Compile runs the tiny planner: adjacent Filters merge, every pushable
// conjunct (time/floor/box/object) moves into the Scan's block predicate —
// so the storage layer's zone-map pruning serves the algebra exactly as it
// served the hard-coded operators — and a residual Filter fuses with a
// following Project into one batch pass. The compiled operator tree is then
// pulled batch-at-a-time: Next/Batch/Err/Stats/Close, the same contract as
// the storage cursors underneath.
//
// Ownership: a Batch yielded by an operator is valid only until that
// operator's next Next or Close. Operators never mutate the batches they
// consume; anything that reorders, drops, or rewrites rows copies into its
// own scratch batch. Sources may therefore hand out shared (e.g. cached)
// batches safely.
package plan

import (
	"vita/internal/colstore"
	"vita/internal/trajectory"
)

// Batch is the unit of dataflow between operators: one column batch of
// trajectory rows plus an optional derived float column. Val is nil until a
// Derive or Aggregate introduces it; when present it is row-aligned with the
// trajectory columns.
type Batch struct {
	Traj *colstore.TrajectoryBatch
	Val  []float64
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if b.Traj == nil {
		return 0
	}
	return b.Traj.Len()
}

// Operator is one node of a compiled plan: a vectorized volcano iterator.
// The contract matches the storage cursors: Next advances to the next
// non-empty batch, Batch is valid until the following Next or Close, Err
// surfaces the first failure, Stats aggregates the scan statistics of the
// leaves, and Close releases the tree (returning Err).
type Operator interface {
	Next() bool
	Batch() *Batch
	Err() error
	Stats() colstore.ScanStats
	Close() error
}

// Source supplies batches to a Scan leaf. Open is called at most once, on
// the first Next of the compiled plan, with the predicate the planner pushed
// down — implementations back it with zone-map-pruned cursors where the
// storage format allows.
type Source interface {
	Open(pred colstore.Predicate) (TrajectoryCursor, error)
}

// TrajectoryCursor is the batch cursor contract a Source returns — the same
// shape as storage.TrajectoryCursor, redeclared here so the algebra depends
// only on the batch types, not on the storage package.
type TrajectoryCursor interface {
	Next() bool
	Batch() *colstore.TrajectoryBatch
	Err() error
	Stats() colstore.ScanStats
	Close() error
}

// CollectSamples drains op and materializes every row as a Sample, then
// closes it. It is the convenient terminal for row-shaped plans (tests, small
// results); large scans should iterate batches instead.
func CollectSamples(op Operator) ([]trajectory.Sample, error) {
	var out []trajectory.Sample
	for op.Next() {
		out = op.Batch().Traj.AppendTo(out)
	}
	return out, op.Close()
}

// Row is one materialized output row with its derived value — what
// CollectRows yields for aggregate-shaped plans.
type Row struct {
	Sample trajectory.Sample
	Val    float64
}

// CollectRows drains op keeping each row's Val column alongside the sample,
// then closes it.
func CollectRows(op Operator) ([]Row, error) {
	var out []Row
	for op.Next() {
		b := op.Batch()
		for i := 0; i < b.Len(); i++ {
			r := Row{Sample: b.Traj.Row(i)}
			if i < len(b.Val) {
				r.Val = b.Val[i]
			}
			out = append(out, r)
		}
	}
	return out, op.Close()
}
