package plan

import (
	"encoding/binary"
	"math"
	"strings"

	"vita/internal/trajectory"
)

// Col names one column of the batch dataflow — the seven trajectory columns
// plus the derived Val column. Operators that take column arguments
// (Project, Aggregate, OrderBy, Join) address columns through these
// constants.
type Col int

const (
	ColObjID Col = iota
	ColBuilding
	ColFloor
	ColPartition
	ColX
	ColY
	ColT
	ColVal
	numCols
)

func (c Col) String() string {
	switch c {
	case ColObjID:
		return "obj"
	case ColBuilding:
		return "building"
	case ColFloor:
		return "floor"
	case ColPartition:
		return "partition"
	case ColX:
		return "x"
	case ColY:
		return "y"
	case ColT:
		return "t"
	case ColVal:
		return "val"
	default:
		return "?"
	}
}

// isString reports whether the column holds strings (everything else reads
// and writes as float64 through colNum/setColNum).
func (c Col) isString() bool { return c == ColBuilding || c == ColPartition }

// colMask is a keep-set of columns; 0 means "all columns".
type colMask uint32

func maskOf(cols []Col) colMask {
	var m colMask
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

func (m colMask) has(c Col) bool { return m == 0 || m&(1<<uint(c)) != 0 }

// colNum returns the numeric view of column c in row i (string columns read
// as 0; a missing Val column reads as 0).
func colNum(b *Batch, c Col, i int) float64 {
	switch c {
	case ColObjID:
		return float64(b.Traj.ObjID[i])
	case ColFloor:
		return float64(b.Traj.Floor[i])
	case ColX:
		return b.Traj.X[i]
	case ColY:
		return b.Traj.Y[i]
	case ColT:
		return b.Traj.T[i]
	case ColVal:
		if i < len(b.Val) {
			return b.Val[i]
		}
		return 0
	default:
		return 0
	}
}

// colStr returns the string view of column c in row i ("" for non-string
// columns).
func colStr(b *Batch, c Col, i int) string {
	switch c {
	case ColBuilding:
		return b.Traj.Building[i]
	case ColPartition:
		return b.Traj.Partition[i]
	default:
		return ""
	}
}

// appendColKey appends an unambiguous encoding of column c in row i to dst —
// strings are length-prefixed, numbers are 8 fixed bytes — so concatenating
// the encodings of a fixed column list yields a collision-free hash key.
func appendColKey(dst []byte, b *Batch, c Col, i int) []byte {
	if c.isString() {
		s := colStr(b, c, i)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(colNum(b, c, i)))
}

// sampleColNum and sampleColStr are the row-materialized counterparts of
// colNum/colStr, used where group representatives are held as Samples.
func sampleColNum(s trajectory.Sample, val float64, c Col) float64 {
	switch c {
	case ColObjID:
		return float64(s.ObjID)
	case ColFloor:
		return float64(s.Loc.Floor)
	case ColX:
		return s.Loc.Point.X
	case ColY:
		return s.Loc.Point.Y
	case ColT:
		return s.T
	case ColVal:
		return val
	default:
		return 0
	}
}

func sampleColStr(s trajectory.Sample, c Col) string {
	switch c {
	case ColBuilding:
		return s.Loc.Building
	case ColPartition:
		return s.Loc.Partition
	default:
		return ""
	}
}

// sampleColCompare orders two materialized rows by column c: lexicographic
// for strings, numeric otherwise.
func sampleColCompare(a trajectory.Sample, av float64, b trajectory.Sample, bv float64, c Col) int {
	if c.isString() {
		return strings.Compare(sampleColStr(a, c), sampleColStr(b, c))
	}
	x, y := sampleColNum(a, av, c), sampleColNum(b, bv, c)
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// setColNum writes v into numeric column c of row i of a scratch batch the
// operator owns (aggregate destinations).
func setColNum(tb *batchCols, c Col, i int, v float64) {
	switch c {
	case ColObjID:
		tb.traj.ObjID[i] = int64(v)
	case ColFloor:
		tb.traj.Floor[i] = int64(v)
	case ColX:
		tb.traj.X[i] = v
	case ColY:
		tb.traj.Y[i] = v
	case ColT:
		tb.traj.T[i] = v
	case ColVal:
		tb.val[i] = v
	}
}
