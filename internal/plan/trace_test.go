package plan

import (
	"strings"
	"testing"

	"vita/internal/obs"
)

// findSpan returns the first span in the tree with the given Op, or nil.
func findSpan(s *obs.Span, op string) *obs.Span {
	if s == nil {
		return nil
	}
	if s.Op == op {
		return s
	}
	for _, c := range s.Children {
		if found := findSpan(c, op); found != nil {
			return found
		}
	}
	return nil
}

// TestTracedPlanParity requires CompileTraced to produce the same rows as
// Compile and a span tree whose per-operator counts agree with the plan's
// own Stats.
func TestTracedPlanParity(t *testing.T) {
	samples := planSamples()
	path := writeVTB(t, samples)

	build := func() *Plan {
		return NewScan(FileSource{Path: path}).
			Filter(TimeBetween(100, 300), OnFloor(0)).
			OrderBy(Asc(ColObjID), Asc(ColT)).
			Limit(500)
	}

	want := collect(t, build())

	c, err := build().CompileTraced()
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectSamples(c)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, got, want)

	root := c.Trace()
	if root == nil {
		t.Fatal("traced plan has nil span tree")
	}
	if root.Op != "Limit" {
		t.Fatalf("root span = %q, want Limit", root.Op)
	}
	// Operator tree: Limit -> OrderBy -> Scan (time+floor pushed down fully,
	// so no residual Filter survives).
	if got := root.SpanCount(); got != 3 {
		var b strings.Builder
		root.WriteTree(&b)
		t.Fatalf("span count = %d, want 3:\n%s", got, b.String())
	}
	if root.Rows != len(want) {
		t.Fatalf("root span rows = %d, want %d", root.Rows, len(want))
	}

	scan := findSpan(root, "Scan")
	if scan == nil {
		t.Fatal("no Scan span")
	}
	st := c.Stats()
	if scan.BlocksTotal != st.BlocksTotal || scan.BlocksPruned != st.BlocksPruned ||
		scan.BlocksScanned != st.BlocksScanned || scan.RowsScanned != st.RowsScanned ||
		scan.RowsMatched != st.RowsMatched {
		t.Fatalf("scan span stats %+v disagree with plan stats %+v", *scan, st)
	}
	if st.BlocksPruned == 0 {
		t.Fatalf("expected pruning under time filter, stats %+v", st)
	}
	if scan.Detail == "" || !strings.Contains(scan.Detail, "floor=0") {
		t.Fatalf("scan detail %q missing pushed predicate", scan.Detail)
	}

	var b strings.Builder
	root.WriteTree(&b)
	for _, wantLine := range []string{"Limit", "OrderBy", "Scan"} {
		if !strings.Contains(b.String(), wantLine) {
			t.Fatalf("rendered tree missing %s:\n%s", wantLine, b.String())
		}
	}
}

// TestTracedJoinSpans checks a join plan's span tree has both the probe and
// build subtrees under the Join span.
func TestTracedJoinSpans(t *testing.T) {
	samples := planSamples()
	src := SliceSource{Samples: samples}

	probe := NewScan(src).Filter(TimeBetween(0, 50)).TimeBucket(10)
	buildSide := NewScan(src).Filter(TimeBetween(0, 50), ObjEq(3)).TimeBucket(10)
	p := probe.Join(buildSide, ColPartition, ColT)

	c, err := p.CompileTraced()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CollectRows(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("join produced no rows")
	}

	root := c.Trace()
	if root.Op != "Join" {
		t.Fatalf("root span = %q, want Join", root.Op)
	}
	if len(root.Children) != 2 {
		t.Fatalf("join span has %d children, want 2 (probe, build)", len(root.Children))
	}
	if root.Rows != len(rows) {
		t.Fatalf("join span rows = %d, want %d", root.Rows, len(rows))
	}
	// Both subtrees bottom out in a Scan span.
	for i, sub := range root.Children {
		if findSpan(sub, "Scan") == nil {
			t.Fatalf("join child %d has no Scan span", i)
		}
	}
}

// TestUntracedPlanHasNoTrace ensures the default Compile path carries no
// span machinery at all.
func TestUntracedPlanHasNoTrace(t *testing.T) {
	c := mustCompile(t, NewScan(SliceSource{Samples: planSamples()}).Filter(TimeBetween(0, 10)))
	if c.Trace() != nil {
		t.Fatal("untraced plan has a span tree")
	}
	if _, ok := c.root.(*traceOp); ok {
		t.Fatal("untraced plan root is a traceOp")
	}
}
