package plan

import (
	"vita/internal/colstore"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// FileSource scans one trajectory file (VTB or CSV, detected by magic
// bytes) through storage.OpenTrajectoryCursor — VTB scans prune blocks by
// zone map under the pushed-down predicate.
type FileSource struct {
	Path    string
	Options storage.CursorOptions
}

// Open opens a batch cursor over the file under pred.
func (s FileSource) Open(pred colstore.Predicate) (TrajectoryCursor, error) {
	cur, _, err := storage.OpenTrajectoryCursorOptions(s.Path, pred, s.Options)
	return cur, err
}

// CursorSource adapts any cursor-opening function into a Source — the hook
// internal/serve uses to back scans with its block cache and multi-segment
// merge cursors.
type CursorSource func(pred colstore.Predicate) (TrajectoryCursor, error)

// Open calls the function.
func (f CursorSource) Open(pred colstore.Predicate) (TrajectoryCursor, error) { return f(pred) }

// SliceSource serves an in-memory sample slice (resident datasets, tests).
// The predicate filters row by row; stats count rows only, like a CSV scan.
type SliceSource struct {
	Samples []trajectory.Sample
	// BatchSize bounds rows per yielded batch (default 4096).
	BatchSize int
}

// Open returns a cursor over the slice under pred.
func (s SliceSource) Open(pred colstore.Predicate) (TrajectoryCursor, error) {
	n := s.BatchSize
	if n <= 0 {
		n = 4096
	}
	return &sliceCursor{samples: s.Samples, pred: pred, size: n}, nil
}

// sliceCursor yields an in-memory slice as predicate-filtered batches.
type sliceCursor struct {
	samples []trajectory.Sample
	pred    colstore.Predicate
	size    int
	pos     int
	batch   colstore.TrajectoryBatch
	stats   colstore.ScanStats
	closed  bool
}

func (c *sliceCursor) Next() bool {
	if c.closed {
		return false
	}
	c.batch.Reset()
	for c.pos < len(c.samples) && c.batch.Len() < c.size {
		s := c.samples[c.pos]
		c.pos++
		c.stats.RowsScanned++
		if c.pred.MatchTrajectory(s) {
			c.stats.RowsMatched++
			c.batch.Append(s)
		}
	}
	return c.batch.Len() > 0
}

func (c *sliceCursor) Batch() *colstore.TrajectoryBatch { return &c.batch }
func (c *sliceCursor) Err() error                       { return nil }
func (c *sliceCursor) Stats() colstore.ScanStats        { return c.stats }
func (c *sliceCursor) Close() error {
	c.closed = true
	return nil
}
