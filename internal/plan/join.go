package plan

import (
	"vita/internal/colstore"
)

// joinOp is the hash equi-join. On first Next it drains the build side
// (right) into a hash table keyed by the join columns, then streams the
// probe side (left): each probe row is emitted once per matching build row,
// with Val set to the build row's object ID — the shape contact-tracing
// queries need (who shared my partition and time bucket?). Callers that
// must exclude self-pairs filter ObjID != Val downstream.
type joinOp struct {
	left       Operator
	right      Operator
	on         []Col
	built      bool
	table      map[string][]float64
	rightStats colstore.ScanStats
	rightErr   error
	bc         batchCols
	keyBuf     []byte
}

func newJoinOp(left, right Operator, on []Col) Operator {
	return &joinOp{left: left, right: right, on: on}
}

func (j *joinOp) key(b *Batch, i int) []byte {
	j.keyBuf = j.keyBuf[:0]
	for _, c := range j.on {
		j.keyBuf = appendColKey(j.keyBuf, b, c, i)
	}
	return j.keyBuf
}

// build drains and closes the right side, releasing its resources before
// the probe phase begins.
func (j *joinOp) build() bool {
	j.built = true
	j.table = make(map[string][]float64)
	for j.right.Next() {
		in := j.right.Batch()
		for i := 0; i < in.Len(); i++ {
			k := string(j.key(in, i))
			j.table[k] = append(j.table[k], float64(in.Traj.ObjID[i]))
		}
	}
	j.rightStats = j.right.Stats()
	j.rightErr = j.right.Close()
	return j.rightErr == nil
}

func (j *joinOp) Next() bool {
	if !j.built && !j.build() {
		return false
	}
	for j.left.Next() {
		in := j.left.Batch()
		j.bc.reset(true)
		for i := 0; i < in.Len(); i++ {
			matches := j.table[string(j.key(in, i))]
			if len(matches) == 0 {
				continue
			}
			s := in.Traj.Row(i)
			for _, objID := range matches {
				j.bc.appendRow(s, objID)
			}
		}
		if j.bc.len() > 0 {
			return true
		}
	}
	return false
}

func (j *joinOp) Batch() *Batch { return j.bc.batch() }

func (j *joinOp) Err() error {
	if err := j.left.Err(); err != nil {
		return err
	}
	return j.rightErr
}

func (j *joinOp) Stats() colstore.ScanStats {
	if !j.built {
		return addStats(j.left.Stats(), j.right.Stats())
	}
	return addStats(j.left.Stats(), j.rightStats)
}

func (j *joinOp) Close() error {
	err := j.left.Close()
	if !j.built {
		// Build never ran; release the right side too.
		j.built = true
		if cerr := j.right.Close(); cerr != nil && j.rightErr == nil {
			j.rightErr = cerr
		}
	}
	if err == nil {
		err = j.rightErr
	}
	return err
}
