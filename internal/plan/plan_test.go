package plan

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/storage"
	"vita/internal/trajectory"
)

// planSamples builds a deterministic mixed workload: 6 objects over 500
// seconds, two floors, three partitions, coordinates sweeping a 40×6 box.
func planSamples() []trajectory.Sample {
	parts := []string{"lobby", "lab", "hall"}
	var out []trajectory.Sample
	for t := 0; t < 500; t++ {
		for o := 0; o < 6; o++ {
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc:   model.At("hq", o%2, parts[(o+t/100)%3], geom.Pt(float64(t%40), float64(o))),
				T:     float64(t),
			})
		}
	}
	return out
}

// writeVTB writes samples to a VTB file with small blocks so zone-map
// pruning has something to prune.
func writeVTB(t *testing.T, samples []trajectory.Sample) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trajectory.vtb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := colstore.NewTrajectoryWriterOptions(f, colstore.Options{BlockSize: 256})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustCompile(t *testing.T, p *Plan) *Compiled {
	t.Helper()
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func collect(t *testing.T, p *Plan) []trajectory.Sample {
	t.Helper()
	got, err := CollectSamples(mustCompile(t, p))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func sameSamples(t *testing.T, got, want []trajectory.Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ObjID != want[i].ObjID || got[i].Loc != want[i].Loc ||
			math.Float64bits(got[i].T) != math.Float64bits(want[i].T) {
			t.Fatalf("row %d differs: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestScanParity requires a bare Scan plan to yield exactly the rows of the
// underlying storage scan, for a VTB file, an in-memory slice, and a custom
// cursor source.
func TestScanParity(t *testing.T) {
	samples := planSamples()
	path := writeVTB(t, samples)

	sources := map[string]Source{
		"file":  FileSource{Path: path},
		"slice": SliceSource{Samples: samples},
		"cursor": CursorSource(func(pred colstore.Predicate) (TrajectoryCursor, error) {
			cur, _, err := storage.OpenTrajectoryCursor(path, pred)
			return cur, err
		}),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			sameSamples(t, collect(t, NewScan(src)), samples)
		})
	}
}

// TestPushdownPredicate checks the planner folds the leading filter chain
// into the scan's block predicate exactly as the hand-built predicates the
// serve layer used to construct — the cache-key parity the serve rewrite
// relies on.
func TestPushdownPredicate(t *testing.T) {
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(20, 15)}
	src := SliceSource{}
	cases := []struct {
		name     string
		plan     *Plan
		want     colstore.Predicate
		residual bool
	}{
		{
			name: "range-shape",
			plan: NewScan(src).Filter(TimeBetween(0, 30), InBox(box), OnFloor(1)),
			want: colstore.Predicate{HasTime: true, T0: 0, T1: 30, HasBox: true, Box: box, HasFloor: true, Floor: 1},
		},
		{
			name: "traj-shape",
			plan: NewScan(src).Filter(ObjEq(3), TimeBetween(0, 60)),
			want: colstore.Predicate{HasObj: true, Obj: 3, HasTime: true, T0: 0, T1: 60},
		},
		{
			name: "windows-intersect",
			plan: NewScan(src).Filter(TimeBetween(0, 100)).Filter(TimeBetween(50, 200)),
			want: colstore.Predicate{HasTime: true, T0: 50, T1: 100},
		},
		{
			name:     "where-stays-residual",
			plan:     NewScan(src).Filter(TimeBetween(0, 30), Where(func(s trajectory.Sample) bool { return s.ObjID%2 == 0 })),
			want:     colstore.Predicate{HasTime: true, T0: 0, T1: 30},
			residual: true,
		},
		{
			name:     "second-box-stays-residual",
			plan:     NewScan(src).Filter(InBox(box), InBox(geom.BBox{Min: geom.Pt(1, 1), Max: geom.Pt(5, 5)})),
			want:     colstore.Predicate{HasBox: true, Box: box},
			residual: true,
		},
		{
			name: "filter-after-bucket-never-pushes",
			plan: NewScan(src).TimeBucket(60).Filter(TimeBetween(0, 30)),
			want: colstore.Predicate{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustCompile(t, tc.plan)
			if got := c.ScanPred(); got != tc.want {
				t.Errorf("ScanPred = %+v, want %+v", got, tc.want)
			}
			_, isScan := c.root.(*scanOp)
			if tc.residual && isScan {
				t.Error("expected a residual filter above the scan, got a bare scan")
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPushdownPrunesBlocks proves pushed predicates reach the zone maps: a
// narrow time filter over a time-ordered VTB file must skip most blocks yet
// return exactly the rows a residual filter would.
func TestPushdownPrunesBlocks(t *testing.T) {
	samples := planSamples()
	path := writeVTB(t, samples)

	c := mustCompile(t, NewScan(FileSource{Path: path}).Filter(TimeBetween(100, 120)))
	got, err := CollectSamples(c)
	if err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats.BlocksPruned == 0 {
		t.Errorf("no blocks pruned: %+v", stats)
	}
	if stats.BlocksScanned >= stats.BlocksTotal {
		t.Errorf("pushdown scanned every block: %+v", stats)
	}

	var want []trajectory.Sample
	for _, s := range samples {
		if s.T >= 100 && s.T <= 120 {
			want = append(want, s)
		}
	}
	sameSamples(t, got, want)
}

// TestResidualMatchesPushdown runs the same conjunction once structured
// (pushed down) and once wrapped in opaque Where predicates (residual); the
// surviving rows must be identical.
func TestResidualMatchesPushdown(t *testing.T) {
	samples := planSamples()
	path := writeVTB(t, samples)
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 3)}

	pushed := collect(t, NewScan(FileSource{Path: path}).
		Filter(TimeBetween(50, 300), OnFloor(1), InBox(box)))
	residual := collect(t, NewScan(FileSource{Path: path}).
		Filter(
			Where(func(s trajectory.Sample) bool { return s.T >= 50 && s.T <= 300 }),
			Where(func(s trajectory.Sample) bool { return s.Loc.Floor == 1 }),
			Where(func(s trajectory.Sample) bool { return s.Loc.HasPoint && box.Contains(s.Loc.Point) }),
		))
	sameSamples(t, pushed, residual)
}

// TestProject checks dropped columns read as zero values and kept ones
// survive; dropping either coordinate clears the point.
func TestProject(t *testing.T) {
	samples := planSamples()[:10]
	got := collect(t, NewScan(SliceSource{Samples: samples}).Project(ColObjID, ColT, ColPartition))
	if len(got) != len(samples) {
		t.Fatalf("project changed row count: %d != %d", len(got), len(samples))
	}
	for i, s := range got {
		want := trajectory.Sample{ObjID: samples[i].ObjID, T: samples[i].T}
		want.Loc.Partition = samples[i].Loc.Partition
		if s != want {
			t.Fatalf("row %d = %+v, want %+v", i, s, want)
		}
	}
}

// TestTimeBucket checks T lands on bucket starts and nothing else changes.
func TestTimeBucket(t *testing.T) {
	samples := planSamples()[:100]
	got := collect(t, NewScan(SliceSource{Samples: samples}).TimeBucket(60))
	for i, s := range got {
		want := samples[i]
		want.T = math.Floor(want.T/60) * 60
		if s != want {
			t.Fatalf("row %d = %+v, want %+v", i, s, want)
		}
	}
}

func rows(t *testing.T, p *Plan) []Row {
	t.Helper()
	got, err := CollectRows(mustCompile(t, p))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAggregate cross-checks every aggregate function against a hand-rolled
// oracle, and requires groups in ascending key order.
func TestAggregate(t *testing.T) {
	samples := planSamples()
	src := SliceSource{Samples: samples}

	got := rows(t, NewScan(src).Aggregate(By(ColPartition, ColFloor),
		CountInto(ColVal)))
	type key struct {
		part  string
		floor int
	}
	counts := map[key]int{}
	for _, s := range samples {
		counts[key{s.Loc.Partition, s.Loc.Floor}]++
	}
	if len(got) != len(counts) {
		t.Fatalf("got %d groups, want %d", len(got), len(counts))
	}
	for i, r := range got {
		k := key{r.Sample.Loc.Partition, r.Sample.Loc.Floor}
		if int(r.Val) != counts[k] {
			t.Errorf("group %v count = %g, want %d", k, r.Val, counts[k])
		}
		if i > 0 {
			prev := got[i-1]
			if prev.Sample.Loc.Partition > r.Sample.Loc.Partition ||
				(prev.Sample.Loc.Partition == r.Sample.Loc.Partition && prev.Sample.Loc.Floor >= r.Sample.Loc.Floor) {
				t.Errorf("groups out of order at %d: %+v after %+v", i, r.Sample, prev.Sample)
			}
		}
	}

	// Sum/Min/Max/Avg of X per object, dst spread across columns.
	agg := rows(t, NewScan(src).Aggregate(By(ColObjID),
		Sum(ColX, ColVal), Min(ColX, ColX), Max(ColX, ColY), Avg(ColT, ColT)))
	sums := map[int]float64{}
	mins := map[int]float64{}
	maxs := map[int]float64{}
	tsum := map[int]float64{}
	n := map[int]int{}
	for _, s := range samples {
		o := s.ObjID
		sums[o] += s.Loc.Point.X
		if n[o] == 0 || s.Loc.Point.X < mins[o] {
			mins[o] = s.Loc.Point.X
		}
		if n[o] == 0 || s.Loc.Point.X > maxs[o] {
			maxs[o] = s.Loc.Point.X
		}
		tsum[o] += s.T
		n[o]++
	}
	if len(agg) != len(n) {
		t.Fatalf("got %d groups, want %d", len(agg), len(n))
	}
	for i, r := range agg {
		o := r.Sample.ObjID
		if i != o {
			t.Errorf("group %d is object %d; want ascending object order", i, o)
		}
		if r.Val != sums[o] {
			t.Errorf("obj %d sum = %g, want %g", o, r.Val, sums[o])
		}
		if r.Sample.Loc.Point.X != mins[o] || r.Sample.Loc.Point.Y != maxs[o] {
			t.Errorf("obj %d min/max = %g/%g, want %g/%g",
				o, r.Sample.Loc.Point.X, r.Sample.Loc.Point.Y, mins[o], maxs[o])
		}
		if want := tsum[o] / float64(n[o]); r.Sample.T != want {
			t.Errorf("obj %d avg t = %g, want %g", o, r.Sample.T, want)
		}
	}
}

// TestAggregateValidation rejects string sources and destinations.
func TestAggregateValidation(t *testing.T) {
	src := SliceSource{}
	if _, err := NewScan(src).Aggregate(By(ColObjID), Sum(ColPartition, ColVal)).Compile(); err == nil {
		t.Error("sum over a string column compiled")
	}
	if _, err := NewScan(src).Aggregate(By(ColObjID), CountInto(ColPartition)).Compile(); err == nil {
		t.Error("count into a string column compiled")
	}
	if _, err := NewScan(src).Aggregate(nil, CountInto(ColVal)).Compile(); err == nil {
		t.Error("aggregate without group-by compiled")
	}
}

// TestOrderByLimit sorts by (floor desc, t asc) and truncates.
func TestOrderByLimit(t *testing.T) {
	samples := planSamples()[:60]
	got := collect(t, NewScan(SliceSource{Samples: samples}).
		OrderBy(Desc(ColFloor), Asc(ColT)).
		Limit(25))
	want := append([]trajectory.Sample(nil), samples...)
	sort.SliceStable(want, func(i, j int) bool {
		if want[i].Loc.Floor != want[j].Loc.Floor {
			return want[i].Loc.Floor > want[j].Loc.Floor
		}
		return want[i].T < want[j].T
	})
	sameSamples(t, got, want[:25])
}

// TestLimitZero yields nothing without erroring.
func TestLimitZero(t *testing.T) {
	got := collect(t, NewScan(SliceSource{Samples: planSamples()}).Limit(0))
	if len(got) != 0 {
		t.Fatalf("limit 0 yielded %d rows", len(got))
	}
}

// TestJoin cross-checks the hash join against a nested-loop oracle on
// (partition, time-bucket) keys — the contact-tracing shape.
func TestJoin(t *testing.T) {
	samples := planSamples()[:600]
	left := NewScan(SliceSource{Samples: samples}).Filter(ObjEq(0)).TimeBucket(30)
	right := NewScan(SliceSource{Samples: samples}).TimeBucket(30)
	got := rows(t, left.Join(right, ColPartition, ColT))

	type pair struct {
		t     float64
		other int
	}
	var want []pair
	bucket := func(t float64) float64 { return math.Floor(t/30) * 30 }
	for _, l := range samples {
		if l.ObjID != 0 {
			continue
		}
		for _, r := range samples {
			if l.Loc.Partition == r.Loc.Partition && bucket(l.T) == bucket(r.T) {
				want = append(want, pair{bucket(l.T), r.ObjID})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("join emitted %d rows, want %d", len(got), len(want))
	}
	gotPairs := make([]pair, len(got))
	for i, r := range got {
		gotPairs[i] = pair{r.Sample.T, int(r.Val)}
	}
	sort.Slice(gotPairs, func(i, j int) bool {
		return gotPairs[i].t < gotPairs[j].t ||
			(gotPairs[i].t == gotPairs[j].t && gotPairs[i].other < gotPairs[j].other)
	})
	sort.Slice(want, func(i, j int) bool {
		return want[i].t < want[j].t ||
			(want[i].t == want[j].t && want[i].other < want[j].other)
	})
	if !reflect.DeepEqual(gotPairs, want) {
		t.Fatalf("join pairs differ: got %d, want %d", len(gotPairs), len(want))
	}

	// Join stats must include both sides' scans.
	c := mustCompile(t, left.Join(right, ColPartition, ColT))
	if _, err := CollectRows(c); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Stats().RowsScanned, 2*len(samples); got != want {
		t.Errorf("join RowsScanned = %d, want %d", got, want)
	}
	if preds := c.ScanPreds(); len(preds) != 2 {
		t.Errorf("join plan has %d scan preds, want 2", len(preds))
	}
}

// TestDwellGaps checks the dwell derivation on a handcrafted visit pattern:
// gaps within a partition accrue, partition changes and over-gap jumps
// don't.
func TestDwellGaps(t *testing.T) {
	mk := func(obj int, part string, ts ...float64) []trajectory.Sample {
		var out []trajectory.Sample
		for _, ts := range ts {
			out = append(out, trajectory.Sample{ObjID: obj, Loc: model.At("hq", 0, part, geom.Pt(0, 0)), T: ts})
		}
		return out
	}
	var samples []trajectory.Sample
	samples = append(samples, mk(1, "lobby", 0, 5, 10)...) // 5+5 in lobby
	samples = append(samples, mk(1, "lab", 12, 14)...)     // 2 in lab (12→14; 10→12 crosses partitions)
	samples = append(samples, mk(1, "lab", 40)...)         // 14→40 exceeds maxGap
	samples = append(samples, mk(2, "lobby", 41, 44)...)   // 3 in lobby; 40→41 crosses objects

	got := rows(t, NewScan(SliceSource{Samples: samples}).
		OrderBy(Asc(ColObjID), Asc(ColT)).
		Derive(DwellGaps(10)).
		Aggregate(By(ColPartition), Sum(ColVal, ColVal)))

	want := map[string]float64{"lab": 2, "lobby": 13}
	if len(got) != len(want) {
		t.Fatalf("got %d partitions, want %d", len(got), len(want))
	}
	for _, r := range got {
		if w := want[r.Sample.Loc.Partition]; r.Val != w {
			t.Errorf("dwell[%s] = %g, want %g", r.Sample.Loc.Partition, r.Val, w)
		}
	}
}

// TestDistinctObjectsViaTwoLevelAggregate exercises the count-distinct
// idiom: group by (partition, object) first, then count the groups.
func TestDistinctObjectsViaTwoLevelAggregate(t *testing.T) {
	samples := planSamples()
	got := rows(t, NewScan(SliceSource{Samples: samples}).
		Aggregate(By(ColPartition, ColObjID)).
		Aggregate(By(ColPartition), CountInto(ColVal)))

	distinct := map[string]map[int]bool{}
	for _, s := range samples {
		if distinct[s.Loc.Partition] == nil {
			distinct[s.Loc.Partition] = map[int]bool{}
		}
		distinct[s.Loc.Partition][s.ObjID] = true
	}
	if len(got) != len(distinct) {
		t.Fatalf("got %d partitions, want %d", len(got), len(distinct))
	}
	for _, r := range got {
		if w := len(distinct[r.Sample.Loc.Partition]); int(r.Val) != w {
			t.Errorf("distinct[%s] = %g, want %d", r.Sample.Loc.Partition, r.Val, w)
		}
	}
}

// TestOperatorsDoNotMutateInput feeds a shared (cache-like) batch source
// through mutating-shaped operators and checks the source rows afterward.
func TestOperatorsDoNotMutateInput(t *testing.T) {
	samples := planSamples()[:200]
	src := SliceSource{Samples: samples}
	before := append([]trajectory.Sample(nil), samples...)

	plans := []*Plan{
		NewScan(src).TimeBucket(60).Filter(Where(func(s trajectory.Sample) bool { return s.ObjID == 1 })),
		NewScan(src).OrderBy(Desc(ColT)).Limit(3),
		NewScan(src).Derive(DwellGaps(10)).Aggregate(By(ColObjID), Sum(ColVal, ColVal)),
	}
	for _, p := range plans {
		if _, err := CollectRows(mustCompile(t, p)); err != nil {
			t.Fatal(err)
		}
	}
	sameSamples(t, samples, before)
}

// TestCompileErrors covers the planner's validation paths.
func TestCompileErrors(t *testing.T) {
	src := SliceSource{}
	bad := []*Plan{
		NewScan(src).TimeBucket(0),
		NewScan(src).OrderBy(),
		NewScan(src).Limit(-1),
		NewScan(src).Join(NewScan(src)),
	}
	for i, p := range bad {
		if _, err := p.Compile(); err == nil {
			t.Errorf("bad plan %d compiled", i)
		}
	}
}
