package plan

import (
	"fmt"

	"vita/internal/colstore"
	"vita/internal/obs"
)

// nodeKind discriminates logical plan nodes.
type nodeKind int

const (
	nodeScan nodeKind = iota
	nodeFilter
	nodeProject
	nodeTimeBucket
	nodeDerive
	nodeAggregate
	nodeOrderBy
	nodeLimit
	nodeJoin
)

func (k nodeKind) String() string {
	switch k {
	case nodeScan:
		return "Scan"
	case nodeFilter:
		return "Filter"
	case nodeProject:
		return "Project"
	case nodeTimeBucket:
		return "TimeBucket"
	case nodeDerive:
		return "Derive"
	case nodeAggregate:
		return "Aggregate"
	case nodeOrderBy:
		return "OrderBy"
	case nodeLimit:
		return "Limit"
	default:
		return "Join"
	}
}

// Plan is a logical operator tree, built fluently from NewScan and compiled
// into a physical Operator chain with Compile. Plans are immutable once
// built; each builder method returns a new node wrapping its receiver.
type Plan struct {
	kind   nodeKind
	input  *Plan      // nil for Scan
	src    Source     // Scan
	preds  []Pred     // Filter
	cols   []Col      // Project keep-set / Aggregate group-by / Join keys
	width  float64    // TimeBucket
	derive DeriveFunc // Derive
	aggs   []AggSpec  // Aggregate
	keys   []SortKey  // OrderBy
	n      int        // Limit
	right  *Plan      // Join build side
}

// NewScan starts a plan at a leaf Source.
func NewScan(src Source) *Plan { return &Plan{kind: nodeScan, src: src} }

// Filter keeps rows matching every predicate (conjunction). Structured
// predicates adjacent to the scan push down into block pruning at Compile.
func (p *Plan) Filter(preds ...Pred) *Plan {
	return &Plan{kind: nodeFilter, input: p, preds: preds}
}

// Project keeps only the given columns, zeroing the rest (row count is
// unchanged). Projection bounds what downstream operators and result
// materialization touch.
func (p *Plan) Project(cols ...Col) *Plan {
	return &Plan{kind: nodeProject, input: p, cols: cols}
}

// TimeBucket replaces each row's timestamp with the start of its
// width-second bucket (floor(T/width)*width) — the usual prelude to
// time-grouped aggregation or temporal joins.
func (p *Plan) TimeBucket(width float64) *Plan {
	return &Plan{kind: nodeTimeBucket, input: p, width: width}
}

// Derive computes the Val column batch-by-batch with fn (see DeriveFunc).
func (p *Plan) Derive(fn DeriveFunc) *Plan {
	return &Plan{kind: nodeDerive, input: p, derive: fn}
}

// Aggregate hash-groups rows by the groupBy columns and reduces each group
// with the given aggregates. Groups are emitted in ascending group-key order
// (typed comparison column by column), so output is deterministic.
func (p *Plan) Aggregate(groupBy []Col, aggs ...AggSpec) *Plan {
	return &Plan{kind: nodeAggregate, input: p, cols: groupBy, aggs: aggs}
}

// OrderBy sorts all rows by the given keys (blocking; stable).
func (p *Plan) OrderBy(keys ...SortKey) *Plan {
	return &Plan{kind: nodeOrderBy, input: p, keys: keys}
}

// Limit stops after n rows.
func (p *Plan) Limit(n int) *Plan {
	return &Plan{kind: nodeLimit, input: p, n: n}
}

// Join hash-joins the plan (probe side) against right (build side) on
// equality of the given columns — e.g. Join(other, ColPartition, ColT) after
// TimeBucket on both sides finds co-located objects per time bucket. Each
// output row is the probe row with Val set to the matching build row's
// object ID.
func (p *Plan) Join(right *Plan, on ...Col) *Plan {
	return &Plan{kind: nodeJoin, input: p, right: right, cols: on}
}

// By is sugar for an Aggregate group-by column list.
func By(cols ...Col) []Col { return cols }

// Compiled is an executable plan: the physical operator tree plus what the
// planner pushed into each scan leaf. It satisfies Operator; drive it with
// Next/Batch or hand it to CollectSamples/CollectRows.
type Compiled struct {
	root Operator
	// scanPreds holds the block predicate pushed into each Scan leaf, in
	// left-to-right leaf order.
	scanPreds []colstore.Predicate
	// traced plans additionally carry a span tree mirroring the physical
	// operator tree; see CompileTraced.
	traced bool
	span   *obs.Span
}

// Trace returns the plan's span tree, or nil when compiled without tracing.
// Spans fill in as the plan executes; read them after Close for final
// counts (scan pruning stats are captured at Close).
func (c *Compiled) Trace() *obs.Span { return c.span }

// ScanPred returns the block predicate the planner pushed into the first
// (probe-side) scan leaf. Callers that cache by predicate (internal/serve)
// use it as the cache key, so identical logical plans share index entries.
func (c *Compiled) ScanPred() colstore.Predicate { return c.scanPreds[0] }

// ScanPreds returns the pushed predicate of every scan leaf (joins have
// two or more).
func (c *Compiled) ScanPreds() []colstore.Predicate { return c.scanPreds }

func (c *Compiled) Next() bool                { return c.root.Next() }
func (c *Compiled) Batch() *Batch             { return c.root.Batch() }
func (c *Compiled) Err() error                { return c.root.Err() }
func (c *Compiled) Stats() colstore.ScanStats { return c.root.Stats() }
func (c *Compiled) Close() error              { return c.root.Close() }

// Compile runs the planner and returns the executable plan. The planner's
// rewrites, in order:
//
//  1. adjacent Filter nodes merge into one conjunction;
//  2. every structured conjunct in the filter chain directly above a Scan
//     moves into the scan's colstore.Predicate (exact pushdown — time
//     windows intersect, floor/box/object claim their slot), so zone maps
//     prune blocks before decode;
//  3. a residual Filter fuses with a directly-following Project into one
//     filterProject pass over each batch.
//
// Pushdown is semantics-preserving by construction: Pred.match and
// colstore.Predicate.MatchTrajectory agree on every structured kind, so the
// same rows survive whether a conjunct runs in the scan or as a residual.
func (p *Plan) Compile() (*Compiled, error) { return p.compileWith(false) }

// CompileTraced compiles like Compile but wraps every physical operator in a
// span recorder (see internal/obs.Span): per-operator batches, rows,
// inclusive wall time, and — on scan leaves — block-pruning stats. The
// untraced Compile path shares none of this machinery, so tracing is strictly
// pay-for-what-you-use.
func (p *Plan) CompileTraced() (*Compiled, error) { return p.compileWith(true) }

func (p *Plan) compileWith(traced bool) (*Compiled, error) {
	c := &Compiled{traced: traced}
	root, span, err := c.compile(p)
	if err != nil {
		return nil, err
	}
	c.root = root
	c.span = span
	return c, nil
}

// compile lowers one logical chain to a physical operator, recording scan
// predicates on c as it reaches the leaves. When tracing, it also returns
// the chain's root span (nil otherwise).
func (c *Compiled) compile(p *Plan) (Operator, *obs.Span, error) {
	// span tracks the span of the chain's current top operator; trace wraps
	// a freshly lowered operator and adopts the previous top (plus any extra
	// subtrees, e.g. a join's build side) as children.
	var span *obs.Span
	trace := func(op Operator, name, detail string, isScan bool, extra ...*obs.Span) Operator {
		if !c.traced {
			return op
		}
		sp := &obs.Span{Op: name, Detail: detail}
		if span != nil {
			sp.Children = append(sp.Children, span)
		}
		sp.Children = append(sp.Children, extra...)
		span = sp
		return newTraceOp(op, sp, isScan)
	}
	// Flatten the linear chain leaf-first.
	var chain []*Plan
	for n := p; n != nil; n = n.input {
		chain = append(chain, n)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if chain[0].kind != nodeScan {
		return nil, nil, fmt.Errorf("plan: chain must start at a Scan, got %s", chain[0].kind)
	}

	// Merge the filter chain sitting directly on the scan and push every
	// structured conjunct into the scan predicate.
	var pred colstore.Predicate
	var residual []Pred
	i := 1
	for ; i < len(chain) && chain[i].kind == nodeFilter; i++ {
		for _, pr := range chain[i].preds {
			if !pr.pushInto(&pred) {
				residual = append(residual, pr)
			}
		}
	}
	c.scanPreds = append(c.scanPreds, pred)
	op := trace(newScanOp(chain[0].src, pred), "Scan", predDetail(pred), true)

	// Fuse the residual with a directly-following Project, if any.
	if len(residual) > 0 {
		var proj []Col
		if i < len(chain) && chain[i].kind == nodeProject {
			proj = chain[i].cols
			i++
		}
		op = trace(newFilterProjectOp(op, residual, proj), fpName(residual, proj), fpDetail(residual, proj), false)
	}

	// Lower the rest of the chain 1:1, still fusing filter+project pairs.
	for ; i < len(chain); i++ {
		n := chain[i]
		switch n.kind {
		case nodeFilter:
			var proj []Col
			if i+1 < len(chain) && chain[i+1].kind == nodeProject {
				proj = chain[i+1].cols
				i++
			}
			op = trace(newFilterProjectOp(op, n.preds, proj), fpName(n.preds, proj), fpDetail(n.preds, proj), false)
		case nodeProject:
			op = trace(newFilterProjectOp(op, nil, n.cols), "Project", fpDetail(nil, n.cols), false)
		case nodeTimeBucket:
			if n.width <= 0 {
				return nil, nil, fmt.Errorf("plan: TimeBucket width must be positive, got %g", n.width)
			}
			op = trace(newTimeBucketOp(op, n.width), "TimeBucket", fmt.Sprintf("width=%gs", n.width), false)
		case nodeDerive:
			op = trace(newDeriveOp(op, n.derive), "Derive", "", false)
		case nodeAggregate:
			ag, err := newHashAggOp(op, n.cols, n.aggs)
			if err != nil {
				return nil, nil, err
			}
			op = trace(ag, "Aggregate", fmt.Sprintf("%d agg(s) by %s", len(n.aggs), colList(n.cols)), false)
		case nodeOrderBy:
			if len(n.keys) == 0 {
				return nil, nil, fmt.Errorf("plan: OrderBy needs at least one key")
			}
			op = trace(newOrderByOp(op, n.keys), "OrderBy", sortKeyList(n.keys), false)
		case nodeLimit:
			if n.n < 0 {
				return nil, nil, fmt.Errorf("plan: Limit must be non-negative, got %d", n.n)
			}
			op = trace(newLimitOp(op, n.n), "Limit", fmt.Sprintf("n=%d", n.n), false)
		case nodeJoin:
			if len(n.cols) == 0 {
				return nil, nil, fmt.Errorf("plan: Join needs at least one key column")
			}
			rightOp, rightSpan, err := c.compile(n.right)
			if err != nil {
				return nil, nil, err
			}
			op = trace(newJoinOp(op, rightOp, n.cols), "Join", "on "+colList(n.cols), false, rightSpan)
		default:
			return nil, nil, fmt.Errorf("plan: unexpected %s mid-chain", n.kind)
		}
	}
	return op, span, nil
}
