package index

import (
	"testing"

	"vita/internal/geom"
	"vita/internal/rng"
)

// BenchmarkRTreeInsert measures dynamic insertion cost. Bound maintenance
// happens along the single descent path, so per-insert cost stays O(depth)
// instead of the former full-tree refresh (O(n) per insert).
func BenchmarkRTreeInsert(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(itoa(n), func(b *testing.B) {
			items := randomItems(rng.New(7), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree := NewRTree()
				for _, it := range items {
					tree.Insert(it)
				}
			}
		})
	}
}

// BenchmarkRTreeInsertSearchMixed interleaves inserts with point queries, the
// pattern of a store that indexes samples while serving lookups.
func BenchmarkRTreeInsertSearchMixed(b *testing.B) {
	items := randomItems(rng.New(8), 5000)
	r := rng.New(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := NewRTree()
		var buf []Item
		for j, it := range items {
			tree.Insert(it)
			if j%8 == 0 {
				buf = tree.SearchPoint(geom.Pt(r.Range(0, 1000), r.Range(0, 1000)), buf[:0])
			}
		}
	}
}

func itoa(n int) string {
	switch n {
	case 1000:
		return "n=1000"
	case 10000:
		return "n=10000"
	}
	return "n"
}
