package index

import (
	"math"

	"vita/internal/geom"
)

// Grid is a uniform grid index over Items. It serves as the ablation baseline
// for the R-tree (DESIGN.md §5) and as the fast device-in-range lookup used
// during RSSI generation.
type Grid struct {
	bounds   geom.BBox
	cellSize float64
	cols     int
	rows     int
	cells    [][]Item
	size     int
}

// NewGrid returns a grid covering bounds with the given cell size. Degenerate
// bounds or non-positive cell sizes fall back to a single cell.
func NewGrid(bounds geom.BBox, cellSize float64) *Grid {
	if bounds.IsEmpty() || cellSize <= 0 {
		return &Grid{bounds: bounds, cellSize: 1, cols: 1, rows: 1, cells: make([][]Item, 1)}
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]Item, cols*rows),
	}
}

// Len returns the number of item references stored. Items spanning multiple
// cells are counted once.
func (g *Grid) Len() int { return g.size }

func (g *Grid) cellRange(b geom.BBox) (c0, r0, c1, r1 int) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	c0 = clamp(int((b.Min.X-g.bounds.Min.X)/g.cellSize), 0, g.cols-1)
	c1 = clamp(int((b.Max.X-g.bounds.Min.X)/g.cellSize), 0, g.cols-1)
	r0 = clamp(int((b.Min.Y-g.bounds.Min.Y)/g.cellSize), 0, g.rows-1)
	r1 = clamp(int((b.Max.Y-g.bounds.Min.Y)/g.cellSize), 0, g.rows-1)
	return
}

// Insert adds item to every cell its bounds overlap.
func (g *Grid) Insert(item Item) {
	c0, r0, c1, r1 := g.cellRange(item.Bounds())
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			i := r*g.cols + c
			g.cells[i] = append(g.cells[i], item)
		}
	}
	g.size++
}

// Search appends every distinct item intersecting query to dst.
func (g *Grid) Search(query geom.BBox, dst []Item) []Item {
	c0, r0, c1, r1 := g.cellRange(query)
	seen := make(map[Item]bool)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, it := range g.cells[r*g.cols+c] {
				if seen[it] {
					continue
				}
				seen[it] = true
				if it.Bounds().Intersects(query) {
					dst = append(dst, it)
				}
			}
		}
	}
	return dst
}

// WithinRange returns every item whose bounds lie within dist of p.
func (g *Grid) WithinRange(p geom.Point, dist float64, dst []Item) []Item {
	q := geom.BBox{Min: p, Max: p}.Expand(dist)
	c0, r0, c1, r1 := g.cellRange(q)
	seen := make(map[Item]bool)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, it := range g.cells[r*g.cols+c] {
				if seen[it] {
					continue
				}
				seen[it] = true
				if it.Bounds().DistToPoint(p) <= dist {
					dst = append(dst, it)
				}
			}
		}
	}
	return dst
}
