package index

import (
	"sort"
	"testing"
	"testing/quick"

	"vita/internal/geom"
	"vita/internal/rng"
)

// boxItem is a minimal Item for tests.
type boxItem struct {
	id int
	bb geom.BBox
}

func (b *boxItem) Bounds() geom.BBox { return b.bb }

func randomItems(r *rng.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		x, y := r.Range(0, 1000), r.Range(0, 1000)
		items[i] = &boxItem{
			id: i,
			bb: geom.BBox{Min: geom.Pt(x, y), Max: geom.Pt(x+r.Range(0, 20), y+r.Range(0, 20))},
		}
	}
	return items
}

func ids(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.(*boxItem).id
	}
	sort.Ints(out)
	return out
}

func bruteSearch(items []Item, q geom.BBox) []Item {
	var out []Item
	for _, it := range items {
		if it.Bounds().Intersects(q) {
			out = append(out, it)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRTreeInsertSearchMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	items := randomItems(r, 500)
	tree := NewRTree()
	for _, it := range items {
		tree.Insert(it)
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	for i := 0; i < 200; i++ {
		q := geom.BBox{
			Min: geom.Pt(r.Range(0, 1000), r.Range(0, 1000)),
		}
		q.Max = q.Min.Add(geom.Pt(r.Range(0, 100), r.Range(0, 100)))
		got := ids(tree.Search(q, nil))
		want := ids(bruteSearch(items, q))
		if !equalIDs(got, want) {
			t.Fatalf("query %d mismatch: got %d items, want %d", i, len(got), len(want))
		}
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	r := rng.New(2)
	items := randomItems(r, 777)
	tree := BulkLoad(items)
	if tree.Len() != 777 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	for i := 0; i < 200; i++ {
		q := geom.BBox{Min: geom.Pt(r.Range(0, 1000), r.Range(0, 1000))}
		q.Max = q.Min.Add(geom.Pt(r.Range(0, 120), r.Range(0, 120)))
		got := ids(tree.Search(q, nil))
		want := ids(bruteSearch(items, q))
		if !equalIDs(got, want) {
			t.Fatalf("bulk query %d mismatch: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestRTreeNearest(t *testing.T) {
	r := rng.New(3)
	items := randomItems(r, 300)
	tree := BulkLoad(items)
	for trial := 0; trial < 50; trial++ {
		p := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
		k := 1 + r.Intn(10)
		got := tree.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Results must be sorted by distance and match brute force distance
		// set.
		var bruteD []float64
		for _, it := range items {
			bruteD = append(bruteD, it.Bounds().DistToPoint(p))
		}
		sort.Float64s(bruteD)
		for i, it := range got {
			d := it.Bounds().DistToPoint(p)
			if i > 0 && d < got[i-1].Bounds().DistToPoint(p)-1e-9 {
				t.Fatal("Nearest results unsorted")
			}
			if d > bruteD[i]+1e-9 {
				t.Fatalf("Nearest[%d] dist %v exceeds true k-th %v", i, d, bruteD[i])
			}
		}
	}
}

func TestRTreeEmptyAndSingle(t *testing.T) {
	tree := NewRTree()
	if got := tree.Search(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}, nil); len(got) != 0 {
		t.Error("empty tree returned results")
	}
	if got := tree.Nearest(geom.Pt(0, 0), 3); got != nil {
		t.Error("empty tree Nearest non-nil")
	}
	it := &boxItem{id: 1, bb: geom.BBox{Min: geom.Pt(5, 5), Max: geom.Pt(6, 6)}}
	tree.Insert(it)
	if got := tree.SearchPoint(geom.Pt(5.5, 5.5), nil); len(got) != 1 {
		t.Errorf("single-item search = %d results", len(got))
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	items := randomItems(r, 400)
	bounds := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1030, 1030)}
	g := NewGrid(bounds, 50)
	for _, it := range items {
		g.Insert(it)
	}
	if g.Len() != 400 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < 200; i++ {
		q := geom.BBox{Min: geom.Pt(r.Range(0, 1000), r.Range(0, 1000))}
		q.Max = q.Min.Add(geom.Pt(r.Range(0, 150), r.Range(0, 150)))
		got := ids(g.Search(q, nil))
		want := ids(bruteSearch(items, q))
		if !equalIDs(got, want) {
			t.Fatalf("grid query %d mismatch: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestGridWithinRange(t *testing.T) {
	r := rng.New(5)
	items := randomItems(r, 300)
	g := NewGrid(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1030, 1030)}, 40)
	for _, it := range items {
		g.Insert(it)
	}
	for i := 0; i < 100; i++ {
		p := geom.Pt(r.Range(0, 1000), r.Range(0, 1000))
		dist := r.Range(5, 100)
		got := ids(g.WithinRange(p, dist, nil))
		var want []int
		for _, it := range items {
			if it.Bounds().DistToPoint(p) <= dist {
				want = append(want, it.(*boxItem).id)
			}
		}
		sort.Ints(want)
		if !equalIDs(got, want) {
			t.Fatalf("WithinRange mismatch at %d: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	g := NewGrid(geom.EmptyBBox(), 10)
	it := &boxItem{id: 0, bb: geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}}
	g.Insert(it)
	if got := g.Search(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)}, nil); len(got) != 1 {
		t.Errorf("degenerate grid search = %d", len(got))
	}
	if g2 := NewGrid(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}, -1); g2 == nil {
		t.Error("negative cell size should still build")
	}
}

// TestQuickRTreeSearchSupersetOfContainedPoints: any point inside an item's
// box must retrieve that item.
func TestQuickRTreeSearchSupersetOfContainedPoints(t *testing.T) {
	r := rng.New(6)
	items := randomItems(r, 200)
	tree := BulkLoad(items)
	f := func(idx uint, fx, fy float64) bool {
		it := items[idx%uint(len(items))].(*boxItem)
		u := abs1(fx)
		v := abs1(fy)
		p := geom.Pt(
			it.bb.Min.X+u*it.bb.Width(),
			it.bb.Min.Y+v*it.bb.Height(),
		)
		for _, got := range tree.SearchPoint(p, nil) {
			if got.(*boxItem).id == it.id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs1(v float64) float64 {
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}
