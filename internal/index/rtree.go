// Package index provides the spatial indices used by Vita's Storage layer:
// an R-tree with quadratic split and STR bulk loading, and a uniform grid
// index. The paper stores indoor entities in featured spatial indices to
// support indoor distance computations and device-in-range lookups; these
// structures play that role in the in-memory store.
package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"vita/internal/geom"
)

const (
	maxEntries = 8
	minEntries = 3
)

// Item is anything indexable by a bounding box.
type Item interface {
	Bounds() geom.BBox
}

// RTree is a dynamic R-tree over Items. The zero value is not usable; call
// NewRTree.
type RTree struct {
	root *rnode
	size int
}

type rnode struct {
	leaf     bool
	bounds   geom.BBox
	children []*rnode // internal nodes
	items    []Item   // leaves
}

// NewRTree returns an empty R-tree.
func NewRTree() *RTree {
	return &RTree{root: &rnode{leaf: true, bounds: geom.EmptyBBox()}}
}

// Len returns the number of items in the tree.
func (t *RTree) Len() int { return t.size }

// Bounds returns the bounding box of all items.
func (t *RTree) Bounds() geom.BBox { return t.root.bounds }

// Insert adds item to the tree. Bounds are enlarged along the single
// root-to-leaf descent path and splits propagate back up that same path, so
// one insert touches O(depth) nodes rather than the whole tree.
func (t *RTree) Insert(item Item) {
	b := item.Bounds()
	// Descend to a leaf, enlarging bounds and recording the path.
	path := make([]*rnode, 0, 8)
	n := t.root
	n.bounds = n.bounds.Union(b)
	for !n.leaf {
		path = append(path, n)
		best := n.children[0]
		bestGrow := math.Inf(1)
		for _, c := range n.children {
			g := c.bounds.EnlargementTo(b)
			if g < bestGrow || (g == bestGrow && c.bounds.Area() < best.bounds.Area()) {
				best, bestGrow = c, g
			}
		}
		best.bounds = best.bounds.Union(b)
		n = best
	}
	n.items = append(n.items, item)
	t.size++
	// Split upward along the recorded path. A split preserves the union of
	// the node's entries, so ancestor bounds stay valid.
	for len(n.items) > maxEntries || len(n.children) > maxEntries {
		a, bb := splitNode(n)
		if len(path) == 0 {
			t.root = &rnode{leaf: false, children: []*rnode{a, bb}, bounds: a.bounds.Union(bb.bounds)}
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		for i, c := range parent.children {
			if c == n {
				parent.children[i] = a
				break
			}
		}
		parent.children = append(parent.children, bb)
		n = parent
	}
}

func splitNode(n *rnode) (*rnode, *rnode) {
	if n.leaf {
		items := n.items
		seedA, seedB := pickSeeds(len(items), func(i int) geom.BBox { return items[i].Bounds() })
		a := &rnode{leaf: true, bounds: geom.EmptyBBox()}
		b := &rnode{leaf: true, bounds: geom.EmptyBBox()}
		for i, it := range items {
			target := a
			switch {
			case i == seedA:
				target = a
			case i == seedB:
				target = b
			default:
				target = cheaperNode(a, b, it.Bounds())
			}
			target.items = append(target.items, it)
			target.bounds = target.bounds.Union(it.Bounds())
		}
		return a, b
	}
	ch := n.children
	seedA, seedB := pickSeeds(len(ch), func(i int) geom.BBox { return ch[i].bounds })
	a := &rnode{bounds: geom.EmptyBBox()}
	b := &rnode{bounds: geom.EmptyBBox()}
	for i, c := range ch {
		target := a
		switch {
		case i == seedA:
			target = a
		case i == seedB:
			target = b
		default:
			target = cheaperNode(a, b, c.bounds)
		}
		target.children = append(target.children, c)
		target.bounds = target.bounds.Union(c.bounds)
	}
	return a, b
}

// cheaperNode returns whichever of a, b grows less when absorbing bb, with a
// mild balance tie-break so neither side starves below minEntries.
func cheaperNode(a, b *rnode, bb geom.BBox) *rnode {
	na, nb := len(a.items)+len(a.children), len(b.items)+len(b.children)
	if na >= maxEntries-minEntries+1 {
		return b
	}
	if nb >= maxEntries-minEntries+1 {
		return a
	}
	ga := a.bounds.EnlargementTo(bb)
	gb := b.bounds.EnlargementTo(bb)
	if ga < gb {
		return a
	}
	if gb < ga {
		return b
	}
	if na <= nb {
		return a
	}
	return b
}

// pickSeeds chooses the pair with the most wasteful combined box (quadratic
// split).
func pickSeeds(n int, boxAt func(int) geom.BBox) (int, int) {
	bestI, bestJ := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			bi, bj := boxAt(i), boxAt(j)
			waste := bi.Union(bj).Area() - bi.Area() - bj.Area()
			if waste > worst {
				worst, bestI, bestJ = waste, i, j
			}
		}
	}
	return bestI, bestJ
}

func (t *RTree) refreshBounds(n *rnode) geom.BBox {
	if n.leaf {
		b := geom.EmptyBBox()
		for _, it := range n.items {
			b = b.Union(it.Bounds())
		}
		n.bounds = b
		return b
	}
	b := geom.EmptyBBox()
	for _, c := range n.children {
		b = b.Union(t.refreshBounds(c))
	}
	n.bounds = b
	return b
}

// Search appends to dst every item whose bounds intersect query and returns
// the extended slice.
func (t *RTree) Search(query geom.BBox, dst []Item) []Item {
	return searchNode(t.root, query, dst)
}

func searchNode(n *rnode, q geom.BBox, dst []Item) []Item {
	if !n.bounds.Intersects(q) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Bounds().Intersects(q) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, q, dst)
	}
	return dst
}

// SearchPoint returns every item whose bounds contain p.
func (t *RTree) SearchPoint(p geom.Point, dst []Item) []Item {
	return t.Search(geom.BBox{Min: p, Max: p}, dst)
}

// nnEntry is a best-first search frontier element.
type nnEntry struct {
	dist float64
	node *rnode
	item Item
}

type nnHeap []nnEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Nearest returns up to k items closest to p (by box distance), nearest
// first.
func (t *RTree) Nearest(p geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap{{dist: t.root.bounds.DistToPoint(p), node: t.root}}
	var out []Item
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(nnEntry)
		switch {
		case e.item != nil:
			out = append(out, e.item)
		case e.node.leaf:
			for _, it := range e.node.items {
				heap.Push(h, nnEntry{dist: it.Bounds().DistToPoint(p), item: it})
			}
		default:
			for _, c := range e.node.children {
				heap.Push(h, nnEntry{dist: c.bounds.DistToPoint(p), node: c})
			}
		}
	}
	return out
}

// BulkLoad builds an R-tree from items using Sort-Tile-Recursive packing;
// it is considerably faster and better-packed than repeated Insert.
func BulkLoad(items []Item) *RTree {
	t := NewRTree()
	if len(items) == 0 {
		return t
	}
	leaves := strPack(items)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = strPackNodes(nodes)
	}
	t.root = nodes[0]
	t.size = len(items)
	t.refreshBounds(t.root)
	return t
}

func strPack(items []Item) []*rnode {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Bounds().Center().X < sorted[j].Bounds().Center().X
	})
	nLeaves := (len(sorted) + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := sliceCount * maxEntries
	var leaves []*rnode
	for i := 0; i < len(sorted); i += sliceSize {
		end := i + sliceSize
		if end > len(sorted) {
			end = len(sorted)
		}
		slice := sorted[i:end]
		sort.Slice(slice, func(a, b int) bool {
			return slice[a].Bounds().Center().Y < slice[b].Bounds().Center().Y
		})
		for j := 0; j < len(slice); j += maxEntries {
			e := j + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &rnode{leaf: true, bounds: geom.EmptyBBox()}
			for _, it := range slice[j:e] {
				leaf.items = append(leaf.items, it)
				leaf.bounds = leaf.bounds.Union(it.Bounds())
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(nodes []*rnode) []*rnode {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].bounds.Center().X < nodes[j].bounds.Center().X
	})
	nParents := (len(nodes) + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := sliceCount * maxEntries
	var parents []*rnode
	for i := 0; i < len(nodes); i += sliceSize {
		end := i + sliceSize
		if end > len(nodes) {
			end = len(nodes)
		}
		slice := nodes[i:end]
		sort.Slice(slice, func(a, b int) bool {
			return slice[a].bounds.Center().Y < slice[b].bounds.Center().Y
		})
		for j := 0; j < len(slice); j += maxEntries {
			e := j + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			p := &rnode{bounds: geom.EmptyBBox()}
			for _, c := range slice[j:e] {
				p.children = append(p.children, c)
				p.bounds = p.bounds.Union(c.bounds)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Validate checks structural invariants (child bounds contained in parent,
// entry counts within limits) and returns the first violation.
func (t *RTree) Validate() error {
	return validateNode(t.root, true)
}

func validateNode(n *rnode, isRoot bool) error {
	if n.leaf {
		if !isRoot && len(n.items) > maxEntries {
			return fmt.Errorf("index: leaf overflow: %d items", len(n.items))
		}
		for _, it := range n.items {
			if !n.bounds.ContainsBBox(it.Bounds()) {
				return fmt.Errorf("index: item bounds escape leaf bounds")
			}
		}
		return nil
	}
	if len(n.children) == 0 {
		return fmt.Errorf("index: internal node with no children")
	}
	if len(n.children) > maxEntries {
		return fmt.Errorf("index: internal overflow: %d children", len(n.children))
	}
	for _, c := range n.children {
		if !n.bounds.ContainsBBox(c.bounds) {
			return fmt.Errorf("index: child bounds escape parent bounds")
		}
		if err := validateNode(c, false); err != nil {
			return err
		}
	}
	return nil
}
