package load

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/obs"
	"vita/internal/serve"
	"vita/internal/trajectory"
)

// testDataset writes a small VTB dataset and opens it for serving.
func testDataset(t *testing.T) *serve.Dataset {
	t.Helper()
	var samples []trajectory.Sample
	parts := []string{"lobby", "office-a", "office-b"}
	for ts := 0; ts < 300; ts++ {
		for o := 0; o < 6; o++ {
			samples = append(samples, trajectory.Sample{
				ObjID: o,
				Loc: model.At("office", o%2, parts[(o+ts/50)%len(parts)],
					geom.Pt(float64((ts*7+o*13)%40), float64((ts*3+o*5)%20))),
				T: float64(ts),
			})
		}
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	w := colstore.NewTrajectoryWriterOptions(&buf, colstore.Options{BlockSize: 512})
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trajectory.vtb"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := serve.Open(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("range=40, knn=25,traj=20")
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights["range"] != 40 || m.Weights["knn"] != 25 || m.Weights["traj"] != 20 {
		t.Errorf("weights %v", m.Weights)
	}
	if got := m.String(); got != "range=40,knn=25,traj=20" {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{"bogus=1", "range", "range=-2", "range=0", ""} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestGeneratorDeterministicAndInBounds checks the replay contract: the
// same seed draws the identical query sequence, and every drawn parameter
// lands inside the dataset's spatial/temporal envelope.
func TestGeneratorDeterministicAndInBounds(t *testing.T) {
	ds := testDataset(t)
	info, err := ds.Info(false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bounds.Min.X >= info.Bounds.Max.X {
		t.Fatalf("info bounds degenerate: %v", info.Bounds)
	}
	g, err := newGenerator(DefaultMix(), info)
	if err != nil {
		t.Fatal(err)
	}

	draw := func() []string {
		rng := rand.New(rand.NewSource(7))
		var ops []string
		for i := 0; i < 200; i++ {
			op, call := g.next(rng)
			ops = append(ops, op)
			if err := call(ds); err != nil {
				t.Fatalf("generated %s query failed: %v", op, err)
			}
		}
		return ops
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across replays: %s vs %s", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, op := range a {
		seen[op] = true
	}
	for _, op := range []string{"range", "knn", "traj"} {
		if !seen[op] {
			t.Errorf("200 draws from the default mix never issued %s", op)
		}
	}

	// Spot-check parameter envelopes directly.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		q := g.rangeReq(rng)
		if q.Box.Min.X < info.Bounds.Min.X || q.Box.Max.X > info.Bounds.Max.X ||
			q.Box.Min.Y < info.Bounds.Min.Y || q.Box.Max.Y > info.Bounds.Max.Y {
			t.Fatalf("range box %v escapes bounds %v", q.Box, info.Bounds)
		}
		if q.T0 < info.T0 || q.T1 > info.T1 || q.T0 > q.T1 {
			t.Fatalf("range window [%g,%g] escapes span [%g,%g]", q.T0, q.T1, info.T0, info.T1)
		}
		k := g.knnReq(rng)
		if k.K < 1 || k.T < info.T0 || k.T > info.T1 {
			t.Fatalf("bad knn draw %+v", k)
		}
		tr := g.trajReq(rng)
		if tr.Obj < 0 || tr.Obj >= info.Objects {
			t.Fatalf("traj object %d outside [0,%d)", tr.Obj, info.Objects)
		}
	}
}

// TestRunClosedLoopLocal drives the closed loop against an in-process
// dataset and checks the report's internal accounting.
func TestRunClosedLoopLocal(t *testing.T) {
	ds := testDataset(t)
	reg := obs.NewRegistry()
	var progressed bool
	rep, err := Run(context.Background(), ds, Options{
		Mode:          ModeClosed,
		Concurrency:   4,
		Duration:      300 * time.Millisecond,
		Seed:          42,
		Registry:      reg,
		Progress:      func(Progress) { progressed = true },
		ProgressEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeClosed || rep.Concurrency != 4 {
		t.Errorf("report shape: %+v", rep)
	}
	if rep.Requests == 0 {
		t.Fatal("closed loop issued no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors against a local dataset", rep.Errors)
	}
	if !progressed {
		t.Error("progress callback never fired")
	}
	var sum int64
	for op, e := range rep.Endpoints {
		sum += e.Requests
		if e.Latency.Count != e.Requests {
			t.Errorf("%s: latency count %d != requests %d", op, e.Latency.Count, e.Requests)
		}
		if e.Latency.P50 > e.Latency.P99 || e.Latency.P99 > e.Latency.Max {
			t.Errorf("%s: quantiles not monotone: %+v", op, e.Latency)
		}
	}
	if sum != rep.Requests {
		t.Errorf("endpoint requests sum %d != total %d", sum, rep.Requests)
	}
	if rep.Overall.Count != rep.Requests {
		t.Errorf("overall count %d != requests %d", rep.Overall.Count, rep.Requests)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput %g", rep.Throughput)
	}

	// The generator's own series must account for the same run.
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vita_load_requests_total") {
		t.Error("vita_load_requests_total missing from the registry")
	}

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "closed loop:") || !strings.Contains(text.String(), "overall") {
		t.Errorf("text summary:\n%s", text.String())
	}
}

// TestRunOpenLoopRemote drives the open loop against a live HTTP server
// through serve.Client, with a /metricsz scrape delta — the acceptance path
// of the harness.
func TestRunOpenLoopRemote(t *testing.T) {
	ds := testDataset(t)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := serve.NewServerWith(ds, serve.ServerOptions{Logger: quiet, Metrics: obs.NewRegistry()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c := serve.NewClient(ts.URL, serve.ClientOptions{Timeout: 10 * time.Second, MaxIdleConnsPerHost: 32})
	rep, err := Run(context.Background(), c, Options{
		Mode:        ModeOpen,
		Rate:        300,
		Concurrency: 8,
		Duration:    500 * time.Millisecond,
		Seed:        1,
		MetricsURL:  ts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors against a healthy server", rep.Errors)
	}
	if rep.Rate != 300 {
		t.Errorf("report rate %g", rep.Rate)
	}
	// The schedule is fixed: a healthy fast server must take nearly all of
	// rate × duration requests (allow slack for startup and rounding).
	want := int64(300 * 0.5)
	if rep.Requests+rep.Dropped < want/2 {
		t.Errorf("only %d requests (+%d dropped) of ~%d scheduled", rep.Requests, rep.Dropped, want)
	}
	if len(rep.ServerDelta) == 0 {
		t.Fatal("no server metrics delta")
	}
	found := false
	for series := range rep.ServerDelta {
		if strings.HasPrefix(series, "vita_http_requests_total") {
			found = true
		}
	}
	if !found {
		t.Errorf("delta lacks vita_http_requests_total series: %v", rep.ServerDelta)
	}

	// SLO gate wiring: generous budgets pass, absurd ones fail.
	if v := rep.CheckSLO(time.Minute, 0); len(v) != 0 {
		t.Errorf("generous SLO violated: %v", v)
	}
	if v := rep.CheckSLO(time.Nanosecond, -1); len(v) == 0 {
		t.Error("1ns SLO not violated")
	}
}

// TestOpenLoopMeasuresFromSchedule pins the coordinated-omission defense: a
// server that stalls every request must report latencies near the stall
// even for requests that spent their time queued, and the recorded p50 must
// exceed the pure service time of the later (queued) requests.
func TestOpenLoopMeasuresFromSchedule(t *testing.T) {
	ds := testDataset(t)
	slow := &stallQuerier{Querier: ds, delay: 30 * time.Millisecond}
	rep, err := Run(context.Background(), slow, Options{
		Mode:        ModeOpen,
		Rate:        200,
		Concurrency: 1, // single worker: the queue must back up
		Duration:    400 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 5 {
		t.Fatalf("only %d requests completed", rep.Requests)
	}
	// 200 req/s offered into a 30ms-per-request single server: the queue
	// grows, so scheduled-time latency keeps climbing well past the 30ms
	// service time. Max latency must show the backlog, not the stall.
	if rep.Overall.Max < 0.06 {
		t.Errorf("max latency %.3fs does not reflect queueing from the schedule (service time 0.03s)",
			rep.Overall.Max)
	}
}

// stallQuerier delays every operator call by a fixed amount.
type stallQuerier struct {
	Querier
	delay time.Duration
}

func (s *stallQuerier) Range(q serve.RangeRequest) (*serve.RangeResponse, error) {
	time.Sleep(s.delay)
	return s.Querier.Range(q)
}
func (s *stallQuerier) KNN(q serve.KNNRequest) (*serve.KNNResponse, error) {
	time.Sleep(s.delay)
	return s.Querier.KNN(q)
}
func (s *stallQuerier) Density(q serve.DensityRequest) (*serve.DensityResponse, error) {
	time.Sleep(s.delay)
	return s.Querier.Density(q)
}
func (s *stallQuerier) Traj(q serve.TrajRequest) (*serve.TrajResponse, error) {
	time.Sleep(s.delay)
	return s.Querier.Traj(q)
}
func (s *stallQuerier) Dwell(q serve.DwellRequest) (*serve.DwellResponse, error) {
	time.Sleep(s.delay)
	return s.Querier.Dwell(q)
}

// TestRunEmptyDatasetFails checks Run refuses an empty dataset instead of
// replaying nonsense.
func TestRunEmptyDatasetFails(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	w := colstore.NewTrajectoryWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trajectory.vtb"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := serve.Open(dir, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	if _, err := Run(context.Background(), ds, Options{Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("Run accepted an empty dataset")
	}
}

func TestDeltaCounters(t *testing.T) {
	before := map[string]float64{
		`a_total`:            10,
		`b_count{op="x"}`:    1,
		`some_gauge`:         5,
		`steady_total`:       7,
		`lat_bucket{le="1"}`: 2,
	}
	after := map[string]float64{
		`a_total`:            15,
		`b_count{op="x"}`:    4,
		`some_gauge`:         9, // gauges never appear in the delta
		`steady_total`:       7, // unchanged counters are dropped
		`lat_bucket{le="1"}`: 3,
		`new_total`:          2, // registered mid-run: counts from zero
	}
	got := DeltaCounters(before, after)
	want := map[string]float64{
		`a_total`:            5,
		`b_count{op="x"}`:    3,
		`lat_bucket{le="1"}`: 1,
		`new_total`:          2,
	}
	if len(got) != len(want) {
		t.Fatalf("delta %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("delta[%s] = %g, want %g", k, got[k], v)
		}
	}
}
