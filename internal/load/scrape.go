package load

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ScrapeMetrics fetches a Prometheus text exposition endpoint (vitaserve's
// /metricsz) and parses every sample line into "name{labels}" → value.
// base may be the server base URL or the full metrics URL.
func ScrapeMetrics(base string) (map[string]float64, error) {
	url := base
	if !strings.HasSuffix(url, "/metricsz") {
		url = strings.TrimRight(url, "/") + "/metricsz"
	}
	res, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: %s: HTTP %d", url, res.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// counterish reports whether a series name follows the Prometheus
// cumulative conventions — the only series where an after-before subtraction
// is meaningful.
func counterish(series string) bool {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
	}
	return strings.HasSuffix(name, "_total") ||
		strings.HasSuffix(name, "_count") ||
		strings.HasSuffix(name, "_sum") ||
		strings.HasSuffix(name, "_bucket")
}

// DeltaCounters subtracts two scrapes, keeping only cumulative series that
// moved: the server-side cost of whatever happened between them. Series
// absent from before (registered mid-run) count from zero.
func DeltaCounters(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for series, v := range after {
		if !counterish(series) {
			continue
		}
		if d := v - before[series]; d != 0 {
			out[series] = d
		}
	}
	return out
}
