// Package load is the workload-replay load-testing harness behind
// cmd/vitaload: it replays a weighted mix of the five query operators
// (range, knn, density, traj, dwell) against any Querier — an in-process
// serve.Dataset or a live vitaserve daemon through serve.Client — and
// reports per-endpoint throughput, error counts, and latency quantiles from
// log-bucketed histograms (obs.QuantileHistogram).
//
// Two driving modes:
//
//   - Open loop (ModeOpen): requests are dispatched on a fixed schedule of
//     Rate per second regardless of how fast responses come back, and each
//     request's latency is measured from its *scheduled* send time. A slow
//     server therefore inflates the recorded latencies instead of silently
//     slowing the generator down — the standard defense against coordinated
//     omission. If the in-flight queue fills, excess requests are counted
//     as Dropped rather than blocking the schedule.
//
//   - Closed loop (ModeClosed): Concurrency workers each issue requests
//     back-to-back, measuring per-request service time. Throughput floats
//     to whatever the server sustains at that concurrency.
//
// Query parameters are drawn deterministically (seeded) from distributions
// fitted to the dataset's /v1/info summary — spatial bounds, time span,
// floors, object count — so the replayed queries hit real data.
package load

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vita/internal/obs"
	"vita/internal/serve"
)

// Querier issues the five query operators plus info. serve.Dataset
// (in-process) and serve.Client (live daemon) both satisfy it with
// identical semantics.
type Querier interface {
	Range(serve.RangeRequest) (*serve.RangeResponse, error)
	KNN(serve.KNNRequest) (*serve.KNNResponse, error)
	Density(serve.DensityRequest) (*serve.DensityResponse, error)
	Traj(serve.TrajRequest) (*serve.TrajResponse, error)
	Dwell(serve.DwellRequest) (*serve.DwellResponse, error)
	Info(trace bool) (*serve.InfoResponse, error)
}

var (
	_ Querier = (*serve.Dataset)(nil)
	_ Querier = (*serve.Client)(nil)
)

// Driving modes.
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

// Options configures one load run. Mode, Duration, and either Rate (open
// loop) or Concurrency (closed loop) are the load shape; everything else
// has serviceable defaults.
type Options struct {
	// Mode is ModeOpen or ModeClosed (default ModeOpen).
	Mode string
	// Rate is the open-loop arrival rate in requests/second (default 100).
	Rate float64
	// Concurrency is the worker count: the in-flight bound in open loop,
	// the exact loop population in closed loop (default 16).
	Concurrency int
	// Duration is how long to keep issuing requests (default 10s).
	Duration time.Duration
	// Mix is the operator mix (zero value = DefaultMix).
	Mix Mix
	// Seed makes the request sequence reproducible (0 = seed 1).
	Seed int64
	// MetricsURL, when set, is scraped (/metricsz Prometheus text) before
	// and after the run; the report carries the per-counter delta — what
	// the run cost the server in blocks decoded, cache churn, requests.
	MetricsURL string
	// Registry, when set, receives the generator's own vita_load_* series
	// so a long-running replay is itself observable.
	Registry *obs.Registry
	// Progress, when set, receives a snapshot every ProgressEvery (default
	// 1s) from a separate goroutine.
	Progress func(Progress)
	// ProgressEvery is the Progress callback interval (default 1s).
	ProgressEvery time.Duration
	// queueSize overrides the open-loop dispatch queue (tests only).
	queueSize int
}

// Progress is one live snapshot of a running load test.
type Progress struct {
	Elapsed  time.Duration
	Sent     int64
	Errors   int64
	Dropped  int64
	P50, P99 float64 // seconds, over all endpoints so far
}

func (o Options) withDefaults() (Options, error) {
	if o.Mode == "" {
		o.Mode = ModeOpen
	}
	if o.Mode != ModeOpen && o.Mode != ModeClosed {
		return o, fmt.Errorf("load: unknown mode %q (want %s or %s)", o.Mode, ModeOpen, ModeClosed)
	}
	if o.Rate <= 0 {
		o.Rate = 100
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if len(o.Mix.Weights) == 0 {
		o.Mix = DefaultMix()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = time.Second
	}
	if o.queueSize <= 0 {
		o.queueSize = 1 << 16
	}
	return o, nil
}

// opStats accumulates one endpoint's outcomes.
type opStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	hist     *obs.QuantileHistogram
}

// runner is the shared state of one load run.
type runner struct {
	q       Querier
	opts    Options
	gen     *generator
	start   time.Time
	perOp   map[string]*opStats
	overall *obs.QuantileHistogram
	sent    atomic.Int64
	errs    atomic.Int64
	dropped atomic.Int64

	// Optional vita_load_* instrumentation (nil without a Registry).
	mReq      *obs.CounterVec
	mErr      *obs.CounterVec
	mDropped  *obs.Counter
	mInFlight *obs.Gauge
}

// Run executes one load test and blocks until it completes (or ctx is
// cancelled, which stops dispatch and drains in-flight requests).
func Run(ctx context.Context, q Querier, opts Options) (*Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	info, err := q.Info(false)
	if err != nil {
		return nil, fmt.Errorf("load: fetch dataset info: %w", err)
	}
	gen, err := newGenerator(opts.Mix, info)
	if err != nil {
		return nil, err
	}

	r := &runner{
		q:       q,
		opts:    opts,
		gen:     gen,
		perOp:   make(map[string]*opStats, len(opNames)),
		overall: obs.NewLatencyHistogram(),
	}
	for _, op := range opNames {
		r.perOp[op] = &opStats{hist: obs.NewLatencyHistogram()}
	}
	if reg := opts.Registry; reg != nil {
		r.mReq = reg.CounterVec("vita_load_requests_total",
			"Requests issued by the load generator, by operator.", "op")
		r.mErr = reg.CounterVec("vita_load_errors_total",
			"Load-generator requests that returned an error, by operator.", "op")
		r.mDropped = reg.Counter("vita_load_dropped_total",
			"Open-loop requests dropped because the dispatch queue was full.")
		r.mInFlight = reg.Gauge("vita_load_in_flight",
			"Load-generator requests currently awaiting a response.")
	}

	var before map[string]float64
	if opts.MetricsURL != "" {
		if before, err = ScrapeMetrics(opts.MetricsURL); err != nil {
			return nil, fmt.Errorf("load: scrape %s before run: %w", opts.MetricsURL, err)
		}
	}

	r.start = time.Now()
	stopProgress := r.startProgress()
	if opts.Mode == ModeOpen {
		r.runOpen(ctx)
	} else {
		r.runClosed(ctx)
	}
	elapsed := time.Since(r.start)
	stopProgress()

	rep := r.report(elapsed)
	if opts.MetricsURL != "" {
		after, err := ScrapeMetrics(opts.MetricsURL)
		if err != nil {
			return nil, fmt.Errorf("load: scrape %s after run: %w", opts.MetricsURL, err)
		}
		rep.ServerDelta = DeltaCounters(before, after)
	}
	return rep, nil
}

// issue sends one call and records its latency from the given origin time
// (scheduled time in open loop, send time in closed loop).
func (r *runner) issue(op string, call func(Querier) error, origin time.Time) {
	if r.mInFlight != nil {
		r.mInFlight.Add(1)
		defer r.mInFlight.Add(-1)
	}
	err := call(r.q)
	lat := time.Since(origin).Seconds()

	st := r.perOp[op]
	st.requests.Add(1)
	st.hist.Observe(lat)
	r.overall.Observe(lat)
	r.sent.Add(1)
	if r.mReq != nil {
		r.mReq.With(op).Inc()
	}
	if err != nil {
		st.errors.Add(1)
		r.errs.Add(1)
		if r.mErr != nil {
			r.mErr.With(op).Inc()
		}
	}
}

// scheduled is one open-loop request with its scheduled send time.
type scheduled struct {
	op   string
	call func(Querier) error
	due  time.Time
}

// runOpen drives the open loop: one dispatcher generates requests on the
// fixed schedule start + i/Rate and hands them to Concurrency workers over
// a deep queue. Latency is measured from the scheduled time, so queueing
// behind a slow server shows up in the numbers instead of slowing dispatch.
func (r *runner) runOpen(ctx context.Context) {
	ch := make(chan scheduled, r.opts.queueSize)
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				r.issue(s.op, s.call, s.due)
			}
		}()
	}

	rng := rand.New(rand.NewSource(r.opts.Seed))
	interval := float64(time.Second) / r.opts.Rate
	deadline := r.start.Add(r.opts.Duration)
	for i := 0; ; i++ {
		due := r.start.Add(time.Duration(float64(i) * interval))
		if !due.Before(deadline) {
			break
		}
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				goto done
			}
		} else if ctx.Err() != nil {
			break
		}
		op, call := r.gen.next(rng)
		select {
		case ch <- scheduled{op: op, call: call, due: due}:
		default:
			// The queue bound was hit: the server is so far behind that
			// Concurrency workers plus queueSize waiters cannot absorb the
			// schedule. Recording a drop keeps the schedule honest — the
			// alternative (blocking here) would silently re-introduce
			// coordinated omission.
			r.dropped.Add(1)
			if r.mDropped != nil {
				r.mDropped.Inc()
			}
		}
	}
done:
	close(ch)
	wg.Wait()
}

// runClosed drives the closed loop: Concurrency workers issue back-to-back
// requests until the deadline, each with its own deterministic stream.
func (r *runner) runClosed(ctx context.Context) {
	deadline := r.start.Add(r.opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.opts.Seed + int64(w)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				op, call := r.gen.next(rng)
				r.issue(op, call, time.Now())
			}
		}(w)
	}
	wg.Wait()
}

// startProgress launches the progress ticker; the returned func stops it.
func (r *runner) startProgress() func() {
	if r.opts.Progress == nil {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(r.opts.ProgressEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.opts.Progress(Progress{
					Elapsed: time.Since(r.start),
					Sent:    r.sent.Load(),
					Errors:  r.errs.Load(),
					Dropped: r.dropped.Load(),
					P50:     r.overall.Quantile(0.5),
					P99:     r.overall.Quantile(0.99),
				})
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}
