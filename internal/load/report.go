package load

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vita/internal/obs"
)

// LatencySummary is one endpoint's latency distribution in seconds, read
// from a log-bucketed quantile histogram (quantiles carry its documented
// ~2% relative error; Max and Mean are exact).
type LatencySummary struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

func summarize(h *obs.QuantileHistogram) LatencySummary {
	return LatencySummary{
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
		Mean:  h.Mean(),
		Count: int64(h.Count()),
	}
}

// EndpointSummary is one operator's outcome totals.
type EndpointSummary struct {
	Requests   int64          `json:"requests"`
	Errors     int64          `json:"errors"`
	Throughput float64        `json:"throughput_rps"`
	Latency    LatencySummary `json:"latency"`
}

// Report is the machine-readable result of one load run — what cmd/vitaload
// writes as JSON and what the CI SLO gate asserts on.
type Report struct {
	Mode            string  `json:"mode"`
	Seed            int64   `json:"seed"`
	Mix             string  `json:"mix"`
	Rate            float64 `json:"rate_rps,omitempty"` // open loop target
	Concurrency     int     `json:"concurrency"`
	DurationSeconds float64 `json:"duration_seconds"` // actual wall time

	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	Dropped    int64   `json:"dropped,omitempty"` // open loop queue overflow
	Throughput float64 `json:"throughput_rps"`

	Overall   LatencySummary             `json:"overall"`
	Endpoints map[string]EndpointSummary `json:"endpoints"`

	// ServerDelta is the change in the server's /metricsz counters across
	// the run (present only when Options.MetricsURL was set): what the run
	// cost in blocks decoded, cache hits/misses, requests by status.
	ServerDelta map[string]float64 `json:"server_metrics_delta,omitempty"`
}

// report assembles the Report from the runner's accumulated state.
func (r *runner) report(elapsed time.Duration) *Report {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	rep := &Report{
		Mode:            r.opts.Mode,
		Seed:            r.opts.Seed,
		Mix:             r.opts.Mix.String(),
		Concurrency:     r.opts.Concurrency,
		DurationSeconds: secs,
		Requests:        r.sent.Load(),
		Errors:          r.errs.Load(),
		Dropped:         r.dropped.Load(),
		Overall:         summarize(r.overall),
		Endpoints:       make(map[string]EndpointSummary),
	}
	if r.opts.Mode == ModeOpen {
		rep.Rate = r.opts.Rate
	}
	rep.Throughput = float64(rep.Requests) / secs
	for op, st := range r.perOp {
		n := st.requests.Load()
		if n == 0 {
			continue
		}
		rep.Endpoints[op] = EndpointSummary{
			Requests:   n,
			Errors:     st.errors.Load(),
			Throughput: float64(n) / secs,
			Latency:    summarize(st.hist),
		}
	}
	return rep
}

// CheckSLO evaluates the report against a latency/error budget and returns
// one human-readable violation per broken constraint (empty = pass).
// sloP99 <= 0 skips the latency gate; maxErrors < 0 skips the error gate.
// While any gate is active, open-loop drops also violate: a drop means the
// target rate was never actually offered, so the measured quantiles would
// understate a pass. With both gates off nothing is checked — deliberate
// overload runs are allowed to drop.
func (r *Report) CheckSLO(sloP99 time.Duration, maxErrors int64) []string {
	var v []string
	if sloP99 > 0 {
		if got := time.Duration(r.Overall.P99 * float64(time.Second)); got > sloP99 {
			v = append(v, fmt.Sprintf("overall p99 %v exceeds SLO %v", got.Round(time.Microsecond), sloP99))
		}
	}
	if maxErrors >= 0 && r.Errors > maxErrors {
		v = append(v, fmt.Sprintf("%d errors exceed budget %d", r.Errors, maxErrors))
	}
	if (sloP99 > 0 || maxErrors >= 0) && r.Dropped > 0 {
		v = append(v, fmt.Sprintf("%d requests dropped: the generator could not offer the target rate", r.Dropped))
	}
	return v
}

// WriteText renders a human-readable summary table.
func (r *Report) WriteText(w io.Writer) error {
	ms := func(s float64) string { return fmt.Sprintf("%.2fms", s*1e3) }
	if _, err := fmt.Fprintf(w, "%s loop: %d requests in %.1fs (%.1f req/s), %d errors",
		r.Mode, r.Requests, r.DurationSeconds, r.Throughput, r.Errors); err != nil {
		return err
	}
	if r.Dropped > 0 {
		if _, err := fmt.Fprintf(w, ", %d dropped", r.Dropped); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%-10s %9s %7s %10s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "p50", "p90", "p99", "p99.9", "max"); err != nil {
		return err
	}
	ops := make([]string, 0, len(r.Endpoints))
	for op := range r.Endpoints {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		e := r.Endpoints[op]
		l := e.Latency
		if _, err := fmt.Fprintf(w, "%-10s %9d %7d %10s %10s %10s %10s %10s\n",
			op, e.Requests, e.Errors, ms(l.P50), ms(l.P90), ms(l.P99), ms(l.P999), ms(l.Max)); err != nil {
			return err
		}
	}
	o := r.Overall
	_, err := fmt.Fprintf(w, "%-10s %9d %7d %10s %10s %10s %10s %10s\n",
		"overall", r.Requests, r.Errors, ms(o.P50), ms(o.P90), ms(o.P99), ms(o.P999), ms(o.Max))
	return err
}
