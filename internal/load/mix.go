package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"vita/internal/geom"
	"vita/internal/serve"
)

// Operator names accepted in a Mix, in canonical order.
var opNames = []string{"range", "knn", "density", "traj", "dwell"}

// Mix is a weighted query mix: how often each operator is issued. Weights
// are relative (they need not sum to anything in particular); zero-weight
// operators are never issued.
type Mix struct {
	Weights map[string]float64
}

// DefaultMix approximates an interactive monitoring workload: mostly range
// scans and kNN probes, some trajectory retrievals, occasional analytic
// density/dwell queries.
func DefaultMix() Mix {
	return Mix{Weights: map[string]float64{
		"range":   40,
		"knn":     25,
		"traj":    20,
		"density": 10,
		"dwell":   5,
	}}
}

// ParseMix parses "range=40,knn=25,traj=20" into a Mix. Unknown operators
// and non-positive totals are errors; operators left out get weight zero.
func ParseMix(s string) (Mix, error) {
	m := Mix{Weights: map[string]float64{}}
	known := map[string]bool{}
	for _, op := range opNames {
		known[op] = true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: bad mix term %q, want op=weight", part)
		}
		op = strings.TrimSpace(op)
		if !known[op] {
			return Mix{}, fmt.Errorf("load: unknown operator %q in mix (have %s)", op, strings.Join(opNames, ", "))
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: bad weight %q for %s", val, op)
		}
		m.Weights[op] = w
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total <= 0 {
		return Mix{}, fmt.Errorf("load: mix %q has no positive weight", s)
	}
	return m, nil
}

// String renders the mix in ParseMix syntax, canonical operator order.
func (m Mix) String() string {
	var parts []string
	for _, op := range opNames {
		if w := m.Weights[op]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", op, w))
		}
	}
	return strings.Join(parts, ",")
}

// generator draws operator calls from a Mix with parameters fitted to a
// dataset's /v1/info summary, so generated queries actually intersect the
// data: boxes and points inside the spatial bounds, windows inside the time
// span, floors from the real floor list, object IDs under the object count.
//
// Draws are deterministic given the rand source — replaying with the same
// seed issues the identical query sequence.
type generator struct {
	ops []string  // operators with positive weight, canonical order
	cum []float64 // cumulative weights aligned with ops

	floors  []int
	objects int
	t0, t1  float64
	bounds  geom.BBox
}

// newGenerator fits a generator to the dataset summary. An empty dataset is
// an error: there is nothing meaningful to replay against.
func newGenerator(mix Mix, info *serve.InfoResponse) (*generator, error) {
	g := &generator{
		floors:  info.Floors,
		objects: info.Objects,
		t0:      info.T0,
		t1:      info.T1,
		bounds:  info.Bounds,
	}
	if info.Empty || info.Samples == 0 {
		return nil, fmt.Errorf("load: dataset is empty")
	}
	if g.t1 <= g.t0 {
		g.t1 = g.t0 + 1
	}
	if g.bounds.Max.X <= g.bounds.Min.X {
		g.bounds.Max.X = g.bounds.Min.X + 1
	}
	if g.bounds.Max.Y <= g.bounds.Min.Y {
		g.bounds.Max.Y = g.bounds.Min.Y + 1
	}
	if len(g.floors) == 0 {
		g.floors = []int{0}
	}
	if g.objects <= 0 {
		g.objects = 1
	}
	total := 0.0
	for _, op := range opNames { // canonical order keeps draws seed-stable
		w := mix.Weights[op]
		if w <= 0 {
			continue
		}
		total += w
		g.ops = append(g.ops, op)
		g.cum = append(g.cum, total)
	}
	if len(g.ops) == 0 {
		return nil, fmt.Errorf("load: mix has no positive weight")
	}
	return g, nil
}

// next draws one operator call. The returned func issues it against any
// Querier and reports the request error, if any.
func (g *generator) next(rng *rand.Rand) (op string, call func(Querier) error) {
	x := rng.Float64() * g.cum[len(g.cum)-1]
	i := sort.SearchFloat64s(g.cum, x)
	if i >= len(g.ops) {
		i = len(g.ops) - 1
	}
	op = g.ops[i]
	switch op {
	case "range":
		q := g.rangeReq(rng)
		return op, func(c Querier) error { _, err := c.Range(q); return err }
	case "knn":
		q := g.knnReq(rng)
		return op, func(c Querier) error { _, err := c.KNN(q); return err }
	case "density":
		q := serve.DensityRequest{T: g.instant(rng)}
		return op, func(c Querier) error { _, err := c.Density(q); return err }
	case "traj":
		q := g.trajReq(rng)
		return op, func(c Querier) error { _, err := c.Traj(q); return err }
	default: // dwell
		q := g.dwellReq(rng)
		return op, func(c Querier) error { _, err := c.Dwell(q); return err }
	}
}

// window draws a random time window covering up to maxFrac of the span.
func (g *generator) window(rng *rand.Rand, maxFrac float64) (t0, t1 float64) {
	span := g.t1 - g.t0
	width := (0.02 + rng.Float64()*(maxFrac-0.02)) * span
	start := g.t0 + rng.Float64()*(span-width)
	return start, start + width
}

func (g *generator) instant(rng *rand.Rand) float64 {
	return g.t0 + rng.Float64()*(g.t1-g.t0)
}

func (g *generator) point(rng *rand.Rand) geom.Point {
	return geom.Pt(
		g.bounds.Min.X+rng.Float64()*(g.bounds.Max.X-g.bounds.Min.X),
		g.bounds.Min.Y+rng.Float64()*(g.bounds.Max.Y-g.bounds.Min.Y),
	)
}

// floor draws a real floor most of the time and the all-floors wildcard
// (-1) for the rest, matching how dashboards query.
func (g *generator) floor(rng *rand.Rand, wildcardFrac float64) int {
	if rng.Float64() < wildcardFrac {
		return -1
	}
	return g.floors[rng.Intn(len(g.floors))]
}

func (g *generator) rangeReq(rng *rand.Rand) serve.RangeRequest {
	// Box edges cover 5–30% of each dimension: selective enough to exercise
	// pruning, wide enough to return rows.
	w := (0.05 + rng.Float64()*0.25) * (g.bounds.Max.X - g.bounds.Min.X)
	h := (0.05 + rng.Float64()*0.25) * (g.bounds.Max.Y - g.bounds.Min.Y)
	x := g.bounds.Min.X + rng.Float64()*(g.bounds.Max.X-g.bounds.Min.X-w)
	y := g.bounds.Min.Y + rng.Float64()*(g.bounds.Max.Y-g.bounds.Min.Y-h)
	t0, t1 := g.window(rng, 0.2)
	return serve.RangeRequest{
		Floor: g.floor(rng, 0.3),
		Box:   geom.BBox{Min: geom.Pt(x, y), Max: geom.Pt(x+w, y+h)},
		T0:    t0,
		T1:    t1,
	}
}

func (g *generator) knnReq(rng *rand.Rand) serve.KNNRequest {
	return serve.KNNRequest{
		Floor: g.floors[rng.Intn(len(g.floors))],
		At:    g.point(rng),
		T:     g.instant(rng),
		K:     1 + rng.Intn(10),
	}
}

func (g *generator) trajReq(rng *rand.Rand) serve.TrajRequest {
	t0, t1 := g.window(rng, 0.5)
	return serve.TrajRequest{
		// Generated datasets number objects densely from 0; a miss returns
		// an empty trajectory, which is itself a realistic request.
		Obj: rng.Intn(g.objects),
		T0:  t0,
		T1:  t1,
	}
}

func (g *generator) dwellReq(rng *rand.Rand) serve.DwellRequest {
	t0, t1 := g.window(rng, 0.3)
	return serve.DwellRequest{Floor: g.floor(rng, 0.5), T0: t0, T1: t1}
}
