package positioning

import (
	"fmt"
	"math"
	"sort"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rssi"
	"vita/internal/topo"
)

// ConversionFunc derives a distance (m) from a noisy RSSI measurement for a
// given device. Users "can define their own RSSI conversion functions"
// (paper §3.3); DefaultConversion wraps the path loss model inversion.
type ConversionFunc func(rssiVal float64, dev *device.Device) float64

// DefaultConversion returns the conversion function inverting the given path
// loss model.
func DefaultConversion(m rssi.PathLossModel) ConversionFunc {
	return func(v float64, dev *device.Device) float64 {
		return m.InvertDistance(v, dev)
	}
}

// TrilaterationConfig configures the trilateration method.
type TrilaterationConfig struct {
	// Convert maps RSSI to distance; nil uses the default path loss
	// inversion with DefaultPathLossModel.
	Convert ConversionFunc
	// SampleInterval is the positioning sampling period (s).
	SampleInterval float64
	// MinDevices is the minimum circles required (>= 3 per §3.3).
	MinDevices int
	// MaxDevices caps how many of the strongest observations are used per
	// window; weak, wall-attenuated signals invert to wildly inflated
	// distances (default 6).
	MaxDevices int
}

// Trilateration infers deterministic locations from the intersection of at
// least three circles, each centered at a positioning device with radius the
// converted distance (paper §3.3). The over-determined system is solved by
// linearized least squares.
type Trilateration struct {
	cfg  TrilaterationConfig
	topo *topo.Topology
	devs map[string]*device.Device
}

// NewTrilateration builds the method for a deployment.
func NewTrilateration(t *topo.Topology, devs []*device.Device, cfg TrilaterationConfig) (*Trilateration, error) {
	idx, err := deviceIndex(devs)
	if err != nil {
		return nil, err
	}
	if cfg.Convert == nil {
		cfg.Convert = DefaultConversion(rssi.DefaultPathLossModel())
	}
	if cfg.MinDevices < 3 {
		cfg.MinDevices = 3
	}
	if cfg.MaxDevices <= 0 {
		cfg.MaxDevices = 6
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 2
	}
	return &Trilateration{cfg: cfg, topo: t, devs: idx}, nil
}

// Estimate processes raw RSSI measurements into positioning records. Windows
// observed by fewer than MinDevices devices yield no estimate (the method
// needs three circles).
func (tr *Trilateration) Estimate(ms []rssi.Measurement) ([]Estimate, error) {
	var out []Estimate
	for _, w := range windowize(ms, tr.cfg.SampleInterval) {
		est, ok, err := tr.estimateWindow(w)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, est)
		}
	}
	return out, nil
}

func (tr *Trilateration) estimateWindow(w window) (Estimate, bool, error) {
	// Group the window's devices by floor; use the floor with the most
	// observations.
	byFloor := make(map[int][]string)
	for id := range w.mean {
		d, ok := tr.devs[id]
		if !ok {
			return Estimate{}, false, fmt.Errorf("positioning: measurement references unknown device %s", id)
		}
		byFloor[d.Floor] = append(byFloor[d.Floor], id)
	}
	bestFloor, bestN := 0, 0
	for fl, ids := range byFloor {
		if len(ids) > bestN || (len(ids) == bestN && fl < bestFloor) {
			bestFloor, bestN = fl, len(ids)
		}
	}
	if bestN < tr.cfg.MinDevices {
		return Estimate{}, false, nil
	}
	ids := byFloor[bestFloor]
	// Keep the strongest observations: weak signals invert to unreliable,
	// inflated distances.
	sort.Slice(ids, func(i, j int) bool {
		if w.mean[ids[i]] != w.mean[ids[j]] {
			return w.mean[ids[i]] > w.mean[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > tr.cfg.MaxDevices {
		ids = ids[:tr.cfg.MaxDevices]
	}

	type circle struct {
		c geom.Point
		r float64
	}
	circles := make([]circle, 0, len(ids))
	for _, id := range ids {
		d := tr.devs[id]
		r := tr.cfg.Convert(w.mean[id], d)
		// A detected object is inside the detection range by construction;
		// cap the inverted distance accordingly.
		if max := d.Props.DetectionRange; max > 0 && r > max {
			r = max
		}
		circles = append(circles, circle{c: d.Position, r: r})
	}

	// Linearize against the first circle:
	//   2(xi-x0)x + 2(yi-y0)y = r0² - ri² + xi² - x0² + yi² - y0²
	// and solve the 2x2 normal equations.
	x0, y0, r0 := circles[0].c.X, circles[0].c.Y, circles[0].r
	var a11, a12, a22, b1, b2 float64
	for _, ci := range circles[1:] {
		ax := 2 * (ci.c.X - x0)
		ay := 2 * (ci.c.Y - y0)
		rhs := r0*r0 - ci.r*ci.r + ci.c.X*ci.c.X - x0*x0 + ci.c.Y*ci.c.Y - y0*y0
		a11 += ax * ax
		a12 += ax * ay
		a22 += ay * ay
		b1 += ax * rhs
		b2 += ay * rhs
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-9 {
		// Collinear devices: no unique intersection.
		return Estimate{}, false, nil
	}
	x := (b1*a22 - b2*a12) / det
	y := (a11*b2 - a12*b1) / det
	pt := clampToFloor(tr.topo, bestFloor, geom.Pt(x, y))

	loc := modelLocation(tr.topo, bestFloor, pt)
	return Estimate{ObjID: w.objID, Loc: loc, T: w.t}, true, nil
}

// modelLocation builds the composite location (buildingID + floorID +
// partition/point) for an estimated coordinate. Estimates falling outside
// every partition keep an empty partition ID but remain valid coordinate
// records.
func modelLocation(t *topo.Topology, floor int, pt geom.Point) model.Location {
	if p, ok := t.PartitionAt(floor, pt); ok {
		return model.At(t.B.ID, floor, p.ID, pt)
	}
	return model.At(t.B.ID, floor, "", pt)
}

// clampToFloor pulls an estimate back into the floor's bounding box: an
// indoor positioning system never reports a location outside the building.
func clampToFloor(t *topo.Topology, floor int, pt geom.Point) geom.Point {
	f, ok := t.B.Floor(floor)
	if !ok {
		return pt
	}
	bb := f.BBox()
	if bb.IsEmpty() {
		return pt
	}
	if pt.X < bb.Min.X {
		pt.X = bb.Min.X
	}
	if pt.X > bb.Max.X {
		pt.X = bb.Max.X
	}
	if pt.Y < bb.Min.Y {
		pt.Y = bb.Min.Y
	}
	if pt.Y > bb.Max.Y {
		pt.Y = bb.Max.Y
	}
	return pt
}
