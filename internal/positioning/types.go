// Package positioning implements Vita's Positioning Method Controller (paper
// §2, §3.3): trilateration, fingerprinting (deterministic kNN and
// probabilistic naive Bayes) and proximity, all operating on the raw RSSI
// data produced by package rssi. Output formats follow paper §4.2.
package positioning

import (
	"fmt"
	"math"
	"sort"

	"vita/internal/device"
	"vita/internal/model"
	"vita/internal/rssi"
)

// Estimate is one deterministic positioning record (o_id, loc, t) — the
// output format of trilateration and deterministic fingerprinting.
type Estimate struct {
	ObjID int
	Loc   model.Location
	T     float64
}

// Candidate is one weighted location sample of a probabilistic estimate.
type Candidate struct {
	Loc  model.Location
	Prob float64
}

// ProbEstimate is one probabilistic positioning record
// (o_id, {(loc_i, prob_i)}, t) — the output format of probabilistic
// fingerprinting.
type ProbEstimate struct {
	ObjID      int
	Candidates []Candidate
	T          float64
}

// Top returns the most probable candidate.
func (p ProbEstimate) Top() (Candidate, bool) {
	if len(p.Candidates) == 0 {
		return Candidate{}, false
	}
	best := p.Candidates[0]
	for _, c := range p.Candidates[1:] {
		if c.Prob > best.Prob {
			best = c
		}
	}
	return best, true
}

// ProximityRecord states that object o_id was detected by device d_id from
// ts to te (paper §4.2).
type ProximityRecord struct {
	ObjID    int
	DeviceID string
	TS, TE   float64
}

// Duration returns the detection period length.
func (p ProximityRecord) Duration() float64 { return p.TE - p.TS }

// window groups the measurements of one object within one positioning
// sampling period: deviceID → mean RSSI.
type window struct {
	objID int
	t     float64
	mean  map[string]float64
}

// windowize buckets measurements into positioning windows of the given
// interval. The Positioning Method Controller has its own sampling frequency
// that may differ from the RSSI generation frequency (paper §2).
func windowize(ms []rssi.Measurement, interval float64) []window {
	if interval <= 0 {
		interval = 2
	}
	type key struct {
		obj int
		idx int64
	}
	type acc struct {
		sum   map[string]float64
		count map[string]int
	}
	buckets := make(map[key]*acc)
	for _, m := range ms {
		k := key{obj: m.ObjID, idx: int64(math.Floor(m.T / interval))}
		a, ok := buckets[k]
		if !ok {
			a = &acc{sum: make(map[string]float64), count: make(map[string]int)}
			buckets[k] = a
		}
		a.sum[m.DeviceID] += m.RSSI
		a.count[m.DeviceID]++
	}
	out := make([]window, 0, len(buckets))
	for k, a := range buckets {
		w := window{
			objID: k.obj,
			t:     (float64(k.idx) + 0.5) * interval,
			mean:  make(map[string]float64, len(a.sum)),
		}
		for d, s := range a.sum {
			w.mean[d] = s / float64(a.count[d])
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].objID != out[j].objID {
			return out[i].objID < out[j].objID
		}
		return out[i].t < out[j].t
	})
	return out
}

// deviceIndex maps device IDs to devices, rejecting duplicates.
func deviceIndex(devs []*device.Device) (map[string]*device.Device, error) {
	idx := make(map[string]*device.Device, len(devs))
	for _, d := range devs {
		if _, dup := idx[d.ID]; dup {
			return nil, fmt.Errorf("positioning: duplicate device ID %s", d.ID)
		}
		idx[d.ID] = d
	}
	return idx, nil
}
