package positioning

import (
	"sort"

	"vita/internal/device"
	"vita/internal/rssi"
)

// ProximityConfig configures the proximity method. The paper notes proximity
// "does not require any extra configurations since the positioning device's
// detection range and frequency are already configured in the infrastructure
// layer" (§3.3); the fields here only tune the thresholding details and have
// working defaults.
type ProximityConfig struct {
	// RSSIThreshold drops measurements weaker than this before interval
	// construction; 0 disables the filter (range gating already happened at
	// RSSI generation).
	RSSIThreshold float64
	// GapFactor scales the device's sampling interval to decide when a
	// detection period ends: a gap longer than GapFactor × interval means
	// the object left the detection range ("the thresholding method" of
	// §3.3). Default 1.5.
	GapFactor float64
}

// Proximity estimates symbolic relative locations: an object detected by a
// device is collocated with it for the detection period (paper §3.3).
type Proximity struct {
	cfg  ProximityConfig
	devs map[string]*device.Device
}

// NewProximity builds the method for a deployment.
func NewProximity(devs []*device.Device, cfg ProximityConfig) (*Proximity, error) {
	idx, err := deviceIndex(devs)
	if err != nil {
		return nil, err
	}
	if cfg.GapFactor <= 0 {
		cfg.GapFactor = 1.5
	}
	return &Proximity{cfg: cfg, devs: idx}, nil
}

// Records converts raw RSSI measurements into proximity records
// (o_id, d_id, ts, te). A detection period for an (object, device) pair ends
// when no measurement arrives within one detection operation of the device.
func (p *Proximity) Records(ms []rssi.Measurement) ([]ProximityRecord, error) {
	type key struct {
		obj int
		dev string
	}
	times := make(map[key][]float64)
	for _, m := range ms {
		if p.cfg.RSSIThreshold != 0 && m.RSSI < p.cfg.RSSIThreshold {
			continue
		}
		k := key{obj: m.ObjID, dev: m.DeviceID}
		times[k] = append(times[k], m.T)
	}
	keys := make([]key, 0, len(times))
	for k := range times {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj != keys[j].obj {
			return keys[i].obj < keys[j].obj
		}
		return keys[i].dev < keys[j].dev
	})

	var out []ProximityRecord
	for _, k := range keys {
		ts := times[k]
		sort.Float64s(ts)
		maxGap := 2.0 * p.cfg.GapFactor
		if d, ok := p.devs[k.dev]; ok && d.Props.SampleInterval > 0 {
			maxGap = d.Props.SampleInterval * p.cfg.GapFactor
		}
		start := ts[0]
		prev := ts[0]
		for _, t := range ts[1:] {
			if t-prev > maxGap {
				out = append(out, ProximityRecord{ObjID: k.obj, DeviceID: k.dev, TS: start, TE: prev})
				start = t
			}
			prev = t
		}
		out = append(out, ProximityRecord{ObjID: k.obj, DeviceID: k.dev, TS: start, TE: prev})
	}
	return out, nil
}
