package positioning

import (
	"fmt"
	"math"
	"sort"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/topo"
)

// RefPoint is one reference location of a radio map with its collected
// fingerprint statistics: per-device mean RSSI and standard deviation.
type RefPoint struct {
	Loc    model.Location
	Mean   map[string]float64
	Stddev map[string]float64
}

// RadioMap is the training data of the fingerprinting method: fingerprints
// collected at a set of reference locations during the offline site-survey
// phase (paper §3.3).
type RadioMap struct {
	Refs []RefPoint
	// Devices lists the device IDs appearing in the map, sorted.
	Devices []string
	// MissingRSSI substitutes for devices unheard at a location (signal
	// floor).
	MissingRSSI float64
}

// RadioMapConfig configures radio map construction.
type RadioMapConfig struct {
	// Spacing is the reference-location grid spacing (m). Vita "first allows
	// users to select a set of reference locations on a given floor"; the
	// grid realizes the default selection, and explicit Refs override it.
	Spacing float64
	// Refs optionally gives explicit reference locations.
	Refs []model.Location
	// SurveySamples is how many site-survey samples are averaged per
	// reference location.
	SurveySamples int
	// Model generates the survey measurements.
	Model rssi.PathLossModel
	// MissingRSSI is the floor value for unheard devices (default -100 dBm).
	MissingRSSI float64
	// Floors restricts the survey to these floors; empty = all floors.
	Floors []int
}

// BuildRadioMap performs the offline phase: it selects reference locations
// and simulates objects collecting fingerprints there (paper §3.3: "Vita
// simulates some objects to collect the fingerprints at the selected
// reference locations").
func BuildRadioMap(t *topo.Topology, devs []*device.Device, cfg RadioMapConfig, r *rng.Rand) (*RadioMap, error) {
	if cfg.Spacing <= 0 {
		cfg.Spacing = 4
	}
	if cfg.SurveySamples <= 0 {
		cfg.SurveySamples = 10
	}
	if cfg.MissingRSSI == 0 {
		cfg.MissingRSSI = -100
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	refs := cfg.Refs
	if len(refs) == 0 {
		refs = gridReferenceLocations(t, cfg.Spacing, cfg.Floors)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("positioning: no reference locations selected")
	}

	byFloor := make(map[int][]*device.Device)
	ids := make(map[string]bool)
	for _, d := range devs {
		byFloor[d.Floor] = append(byFloor[d.Floor], d)
		ids[d.ID] = true
	}

	rm := &RadioMap{MissingRSSI: cfg.MissingRSSI}
	for id := range ids {
		rm.Devices = append(rm.Devices, id)
	}
	sort.Strings(rm.Devices)

	for _, loc := range refs {
		rp := RefPoint{
			Loc:    loc,
			Mean:   make(map[string]float64),
			Stddev: make(map[string]float64),
		}
		for _, d := range byFloor[loc.Floor] {
			dist := d.Position.Dist(loc.Point)
			if dist > d.Props.DetectionRange {
				continue
			}
			crossings := 0
			if cfg.Model.UseLineOfSight {
				crossings = t.Crossings(loc.Floor, d.Position, loc.Point)
			}
			var sum, sum2 float64
			for s := 0; s < cfg.SurveySamples; s++ {
				v := cfg.Model.At(dist, crossings, d, r)
				sum += v
				sum2 += v * v
			}
			n := float64(cfg.SurveySamples)
			mean := sum / n
			variance := sum2/n - mean*mean
			if variance < 0.25 {
				variance = 0.25 // avoid degenerate Gaussians
			}
			rp.Mean[d.ID] = mean
			rp.Stddev[d.ID] = math.Sqrt(variance)
		}
		if len(rp.Mean) > 0 {
			rm.Refs = append(rm.Refs, rp)
		}
	}
	if len(rm.Refs) == 0 {
		return nil, fmt.Errorf("positioning: radio map empty — no reference location hears any device")
	}
	return rm, nil
}

// gridReferenceLocations lays a grid of the given spacing over every
// partition of the selected floors.
func gridReferenceLocations(t *topo.Topology, spacing float64, floors []int) []model.Location {
	floorSet := make(map[int]bool)
	for _, f := range floors {
		floorSet[f] = true
	}
	var out []model.Location
	for _, level := range t.B.FloorLevels() {
		if len(floorSet) > 0 && !floorSet[level] {
			continue
		}
		f := t.B.Floors[level]
		bb := f.BBox()
		for x := bb.Min.X + spacing/2; x < bb.Max.X; x += spacing {
			for y := bb.Min.Y + spacing/2; y < bb.Max.Y; y += spacing {
				pt := geom.Pt(x, y)
				if p, ok := f.PartitionAt(pt); ok {
					out = append(out, model.At(t.B.ID, level, p.ID, pt))
				}
			}
		}
	}
	return out
}

// FingerprintAlgorithm selects the online inference algorithm.
type FingerprintAlgorithm int

// Fingerprinting algorithms (paper §3.3: "deterministic or probabilistic").
const (
	// KNN is the deterministic k-nearest-neighbors-in-signal-space
	// algorithm; the estimate is the distance-weighted centroid of the k
	// nearest reference locations.
	KNN FingerprintAlgorithm = iota
	// NaiveBayes is the probabilistic algorithm: a Gaussian naive Bayes
	// posterior over reference locations.
	NaiveBayes
)

// String implements fmt.Stringer.
func (a FingerprintAlgorithm) String() string {
	if a == NaiveBayes {
		return "naive-bayes"
	}
	return "knn"
}

// FingerprintConfig configures the online phase.
type FingerprintConfig struct {
	Algorithm FingerprintAlgorithm
	// K is the neighbor count (KNN) or the number of candidates reported
	// (NaiveBayes).
	K int
	// SampleInterval is the positioning sampling period (s).
	SampleInterval float64
}

// Fingerprinting is the online positioning method over a built radio map.
type Fingerprinting struct {
	cfg  FingerprintConfig
	rm   *RadioMap
	devs map[string]*device.Device
	// refKeys caches each reference point's device IDs in sorted order, so
	// the per-(window × reference) scoring loops accumulate floats in a
	// stable order without re-sorting map keys on every call.
	refKeys [][]string
}

// NewFingerprinting builds the method for the deployment that produced the
// radio map.
func NewFingerprinting(rm *RadioMap, devs []*device.Device, cfg FingerprintConfig) (*Fingerprinting, error) {
	if rm == nil || len(rm.Refs) == 0 {
		return nil, fmt.Errorf("positioning: empty radio map")
	}
	idx, err := deviceIndex(devs)
	if err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 2
	}
	refKeys := make([][]string, len(rm.Refs))
	for i, ref := range rm.Refs {
		refKeys[i] = sortedKeys(ref.Mean)
	}
	return &Fingerprinting{cfg: cfg, rm: rm, devs: idx, refKeys: refKeys}, nil
}

// Estimate runs the deterministic algorithm (KNN, or the Bayes argmax when
// the algorithm is NaiveBayes), producing (o_id, loc, t) records.
func (fp *Fingerprinting) Estimate(ms []rssi.Measurement) ([]Estimate, error) {
	var out []Estimate
	for _, w := range windowize(ms, fp.cfg.SampleInterval) {
		switch fp.cfg.Algorithm {
		case NaiveBayes:
			pe, ok := fp.bayesWindow(w)
			if !ok {
				continue
			}
			top, ok := pe.Top()
			if !ok {
				continue
			}
			out = append(out, Estimate{ObjID: w.objID, Loc: top.Loc, T: w.t})
		default:
			est, ok := fp.knnWindow(w)
			if ok {
				out = append(out, est)
			}
		}
	}
	return out, nil
}

// EstimateProbabilistic runs the probabilistic algorithm, producing
// (o_id, {(loc_i, prob_i)}, t) records.
func (fp *Fingerprinting) EstimateProbabilistic(ms []rssi.Measurement) ([]ProbEstimate, error) {
	var out []ProbEstimate
	for _, w := range windowize(ms, fp.cfg.SampleInterval) {
		if pe, ok := fp.bayesWindow(w); ok {
			out = append(out, pe)
		}
	}
	return out, nil
}

// knnWindow finds the k reference points nearest in signal space and returns
// their inverse-distance-weighted centroid.
func (fp *Fingerprinting) knnWindow(w window) (Estimate, bool) {
	type scored struct {
		i    int
		dist float64
	}
	floor := fp.majorityFloorOf(w)
	obsKeys := sortedKeys(w.mean)
	var cands []scored
	for i, ref := range fp.rm.Refs {
		if ref.Loc.Floor != floor {
			continue
		}
		d, n := fp.signalDistance(w.mean, obsKeys, ref, fp.refKeys[i])
		if n == 0 {
			continue
		}
		cands = append(cands, scored{i: i, dist: d})
	}
	if len(cands) == 0 {
		return Estimate{}, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].i < cands[b].i
	})
	k := fp.cfg.K
	if k > len(cands) {
		k = len(cands)
	}
	var wx, wy, wsum float64
	first := fp.rm.Refs[cands[0].i].Loc
	for _, c := range cands[:k] {
		ref := fp.rm.Refs[c.i]
		wgt := 1 / (c.dist + 0.1)
		wx += ref.Loc.Point.X * wgt
		wy += ref.Loc.Point.Y * wgt
		wsum += wgt
	}
	pt := geom.Pt(wx/wsum, wy/wsum)
	loc := model.At(first.Building, first.Floor, first.Partition, pt)
	return Estimate{ObjID: w.objID, Loc: loc, T: w.t}, true
}

// bayesWindow computes the naive Bayes posterior over reference locations.
func (fp *Fingerprinting) bayesWindow(w window) (ProbEstimate, bool) {
	floor := fp.majorityFloorOf(w)
	obsKeys := sortedKeys(w.mean)
	type scored struct {
		i    int
		logp float64
	}
	var cands []scored
	for i, ref := range fp.rm.Refs {
		if ref.Loc.Floor != floor {
			continue
		}
		logp, n := fp.logLikelihood(w.mean, obsKeys, ref)
		if n == 0 {
			continue
		}
		cands = append(cands, scored{i: i, logp: logp})
	}
	if len(cands) == 0 {
		return ProbEstimate{}, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].logp != cands[b].logp {
			return cands[a].logp > cands[b].logp
		}
		return cands[a].i < cands[b].i
	})
	k := fp.cfg.K
	if k > len(cands) {
		k = len(cands)
	}
	cands = cands[:k]
	// Normalize in probability space, guarding against underflow.
	maxLog := cands[0].logp
	var total float64
	probs := make([]float64, len(cands))
	for i, c := range cands {
		probs[i] = math.Exp(c.logp - maxLog)
		total += probs[i]
	}
	pe := ProbEstimate{ObjID: w.objID, T: w.t}
	for i, c := range cands {
		pe.Candidates = append(pe.Candidates, Candidate{
			Loc:  fp.rm.Refs[c.i].Loc,
			Prob: probs[i] / total,
		})
	}
	return pe, true
}

// signalDistance is the Euclidean distance in signal space over the union of
// devices heard by the window and the reference, substituting MissingRSSI
// for unheard devices. It returns the distance and the number of devices
// compared.
func (fp *Fingerprinting) signalDistance(obs map[string]float64, obsKeys []string, ref RefPoint, refKeys []string) (float64, int) {
	// Iterate both maps through pre-sorted key slices: float accumulation
	// must not depend on Go's randomized map order, or identical runs drift
	// in the low bits and break the toolkit's seed-determinism guarantee.
	var sum float64
	n := 0
	for _, id := range obsKeys {
		v := obs[id]
		mean, ok := ref.Mean[id]
		if !ok {
			mean = fp.rm.MissingRSSI
		}
		d := v - mean
		sum += d * d
		n++
	}
	for _, id := range refKeys {
		if _, ok := obs[id]; ok {
			continue
		}
		d := fp.rm.MissingRSSI - ref.Mean[id]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Sqrt(sum / float64(n)), n
}

// sortedKeys returns m's keys in ascending order, for order-stable float
// accumulation.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// logLikelihood is the Gaussian naive Bayes log likelihood of the observed
// fingerprint at the reference point.
func (fp *Fingerprinting) logLikelihood(obs map[string]float64, obsKeys []string, ref RefPoint) (float64, int) {
	var lp float64
	n := 0
	for _, id := range obsKeys {
		v := obs[id]
		mean, ok := ref.Mean[id]
		sd := ref.Stddev[id]
		if !ok {
			mean, sd = fp.rm.MissingRSSI, 5
		}
		if sd <= 0 {
			sd = 1
		}
		z := (v - mean) / sd
		lp += -0.5*z*z - math.Log(sd)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return lp, n
}

// majorityFloorOf picks the floor of the devices dominating the window,
// falling back to the radio map's first reference floor when no observed
// device is known.
func (fp *Fingerprinting) majorityFloorOf(w window) int {
	counts := make(map[int]int)
	for id := range w.mean {
		if d, ok := fp.devs[id]; ok {
			counts[d.Floor]++
		}
	}
	best, bestN := fp.rm.Refs[0].Loc.Floor, 0
	for fl, n := range counts {
		if n > bestN || (n == bestN && fl < best) {
			best, bestN = fl, n
		}
	}
	return best
}
