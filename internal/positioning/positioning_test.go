package positioning

import (
	"math"
	"testing"

	"vita/internal/device"
	"vita/internal/geom"
	"vita/internal/ifc"
	"vita/internal/rng"
	"vita/internal/rssi"
	"vita/internal/topo"
)

func officeTopo(t testing.TB) *topo.Topology {
	t.Helper()
	f, err := ifc.Parse(ifc.OfficeIFC())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ifc.Extract(f, ifc.DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(b, topo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// noiseFreeModel returns a path loss model with no fluctuation and no wall
// noise, so methods can be tested for exact recovery.
func noiseFreeModel() rssi.PathLossModel {
	m := rssi.DefaultPathLossModel()
	m.FluctuationSigma = 0
	m.WallLoss = 0
	return m
}

// squareDevices places four Wi-Fi devices at the corners of a square on
// floor 0.
func squareDevices() []*device.Device {
	props := device.DefaultProperties(device.WiFi)
	props.DetectionRange = 100
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(20, 0), geom.Pt(20, 20), geom.Pt(0, 20)}
	out := make([]*device.Device, len(pts))
	for i, p := range pts {
		out[i] = &device.Device{
			ID: string(rune('a' + i)), Type: device.WiFi, Floor: 0,
			Position: p, Props: props,
		}
	}
	return out
}

// measurementsAt synthesizes noise-free measurements of an object at pt.
func measurementsAt(devs []*device.Device, m rssi.PathLossModel, pt geom.Point, tm float64) []rssi.Measurement {
	var out []rssi.Measurement
	for _, d := range devs {
		out = append(out, rssi.Measurement{
			ObjID:    1,
			DeviceID: d.ID,
			RSSI:     m.At(d.Position.Dist(pt), 0, d, nil),
			T:        tm,
		})
	}
	return out
}

func TestTrilaterationExactRecovery(t *testing.T) {
	tp := officeTopo(t)
	devs := squareDevices()
	m := noiseFreeModel()
	tr, err := NewTrilateration(tp, devs, TrilaterationConfig{
		Convert:        DefaultConversion(m),
		SampleInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, truth := range []geom.Point{geom.Pt(10, 10), geom.Pt(5, 3), geom.Pt(18, 15)} {
		ests, err := tr.Estimate(measurementsAt(devs, m, truth, 1))
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != 1 {
			t.Fatalf("got %d estimates", len(ests))
		}
		if d := ests[0].Loc.Point.Dist(truth); d > 0.01 {
			t.Errorf("trilateration error %.4fm at %v (est %v)", d, truth, ests[0].Loc.Point)
		}
	}
}

func TestTrilaterationNeedsThreeDevices(t *testing.T) {
	tp := officeTopo(t)
	devs := squareDevices()[:2]
	m := noiseFreeModel()
	tr, err := NewTrilateration(tp, devs, TrilaterationConfig{Convert: DefaultConversion(m)})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := tr.Estimate(measurementsAt(devs, m, geom.Pt(10, 10), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 0 {
		t.Errorf("2-device window produced %d estimates", len(ests))
	}
}

func TestTrilaterationCollinearDevices(t *testing.T) {
	tp := officeTopo(t)
	props := device.DefaultProperties(device.WiFi)
	props.DetectionRange = 100
	var devs []*device.Device
	for i := 0; i < 3; i++ {
		devs = append(devs, &device.Device{
			ID: string(rune('a' + i)), Type: device.WiFi, Floor: 0,
			Position: geom.Pt(float64(i*10), 5), Props: props,
		})
	}
	m := noiseFreeModel()
	tr, err := NewTrilateration(tp, devs, TrilaterationConfig{Convert: DefaultConversion(m)})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := tr.Estimate(measurementsAt(devs, m, geom.Pt(10, 10), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 0 {
		t.Errorf("collinear devices produced %d estimates", len(ests))
	}
}

func TestTrilaterationUnknownDevice(t *testing.T) {
	tp := officeTopo(t)
	tr, err := NewTrilateration(tp, squareDevices(), TrilaterationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Estimate([]rssi.Measurement{
		{ObjID: 1, DeviceID: "ghost", RSSI: -50, T: 1},
		{ObjID: 1, DeviceID: "ghost2", RSSI: -50, T: 1},
		{ObjID: 1, DeviceID: "ghost3", RSSI: -50, T: 1},
	})
	if err == nil {
		t.Error("unknown device accepted")
	}
}

func buildRadioMap(t *testing.T, tp *topo.Topology, devs []*device.Device, m rssi.PathLossModel, spacing float64) *RadioMap {
	t.Helper()
	rm, err := BuildRadioMap(tp, devs, RadioMapConfig{
		Spacing: spacing,
		Model:   m,
		Floors:  []int{0},
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func TestFingerprintKNNRecoversLocation(t *testing.T) {
	tp := officeTopo(t)
	devs := squareDevices()
	m := noiseFreeModel()
	rm := buildRadioMap(t, tp, devs, m, 2)
	fp, err := NewFingerprinting(rm, devs, FingerprintConfig{Algorithm: KNN, K: 3, SampleInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Pt(10, 10)
	ests, err := fp.Estimate(measurementsAt(devs, m, truth, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 1 {
		t.Fatalf("got %d estimates", len(ests))
	}
	// With a 2m grid and noise-free signals, the error is bounded by the
	// grid quantization.
	if d := ests[0].Loc.Point.Dist(truth); d > 2.5 {
		t.Errorf("kNN error %.2fm exceeds grid bound", d)
	}
}

func TestFingerprintBayesProbabilities(t *testing.T) {
	tp := officeTopo(t)
	devs := squareDevices()
	m := rssi.DefaultPathLossModel() // with noise, for realistic stddevs
	rm := buildRadioMap(t, tp, devs, m, 4)
	fp, err := NewFingerprinting(rm, devs, FingerprintConfig{Algorithm: NaiveBayes, K: 5, SampleInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	pes, err := fp.EstimateProbabilistic(measurementsAt(devs, noiseFreeModel(), geom.Pt(10, 10), 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pes) != 1 {
		t.Fatalf("got %d prob estimates", len(pes))
	}
	pe := pes[0]
	if len(pe.Candidates) == 0 || len(pe.Candidates) > 5 {
		t.Fatalf("candidates = %d", len(pe.Candidates))
	}
	var sum float64
	for _, c := range pe.Candidates {
		if c.Prob < 0 || c.Prob > 1 {
			t.Errorf("probability %v out of range", c.Prob)
		}
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	top, ok := pe.Top()
	if !ok {
		t.Fatal("no top candidate")
	}
	if d := top.Loc.Point.Dist(geom.Pt(10, 10)); d > 5 {
		t.Errorf("Bayes top candidate %.2fm away", d)
	}
}

func TestRadioMapValidation(t *testing.T) {
	tp := officeTopo(t)
	if _, err := BuildRadioMap(tp, nil, RadioMapConfig{Model: noiseFreeModel()}, rng.New(1)); err == nil {
		t.Error("radio map with no devices accepted")
	}
	if _, err := NewFingerprinting(&RadioMap{}, nil, FingerprintConfig{}); err == nil {
		t.Error("empty radio map accepted")
	}
}

func TestProximityIntervals(t *testing.T) {
	props := device.DefaultProperties(device.RFID)
	props.SampleInterval = 1
	dev := &device.Device{ID: "r1", Type: device.RFID, Floor: 0, Props: props}
	px, err := NewProximity([]*device.Device{dev}, ProximityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Two visits separated by a 10s gap.
	var ms []rssi.Measurement
	for _, tm := range []float64{0, 1, 2, 3, 15, 16, 17} {
		ms = append(ms, rssi.Measurement{ObjID: 1, DeviceID: "r1", RSSI: -50, T: tm})
	}
	recs, err := px.Records(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].TS != 0 || recs[0].TE != 3 {
		t.Errorf("first interval = [%v, %v]", recs[0].TS, recs[0].TE)
	}
	if recs[1].TS != 15 || recs[1].TE != 17 {
		t.Errorf("second interval = [%v, %v]", recs[1].TS, recs[1].TE)
	}
	if recs[0].Duration() != 3 {
		t.Errorf("Duration = %v", recs[0].Duration())
	}
}

func TestProximityRSSIThreshold(t *testing.T) {
	dev := &device.Device{ID: "r1", Type: device.RFID, Floor: 0,
		Props: device.DefaultProperties(device.RFID)}
	px, err := NewProximity([]*device.Device{dev}, ProximityConfig{RSSIThreshold: -60})
	if err != nil {
		t.Fatal(err)
	}
	ms := []rssi.Measurement{
		{ObjID: 1, DeviceID: "r1", RSSI: -80, T: 0}, // below threshold
		{ObjID: 1, DeviceID: "r1", RSSI: -50, T: 1},
	}
	recs, err := px.Records(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TS != 1 {
		t.Errorf("threshold filter broken: %+v", recs)
	}
}

func TestWindowizeAveraging(t *testing.T) {
	ms := []rssi.Measurement{
		{ObjID: 1, DeviceID: "a", RSSI: -40, T: 0.2},
		{ObjID: 1, DeviceID: "a", RSSI: -60, T: 1.8},
		{ObjID: 1, DeviceID: "b", RSSI: -55, T: 1.0},
		{ObjID: 2, DeviceID: "a", RSSI: -45, T: 0.5},
		{ObjID: 1, DeviceID: "a", RSSI: -70, T: 2.5}, // next window
	}
	ws := windowize(ms, 2)
	if len(ws) != 3 {
		t.Fatalf("got %d windows", len(ws))
	}
	// Windows sorted by (obj, t): obj1 win0, obj1 win1, obj2 win0.
	w0 := ws[0]
	if w0.objID != 1 || math.Abs(w0.mean["a"]-(-50)) > 1e-9 || math.Abs(w0.mean["b"]-(-55)) > 1e-9 {
		t.Errorf("window 0 wrong: %+v", w0)
	}
	if ws[1].objID != 1 || math.Abs(ws[1].mean["a"]-(-70)) > 1e-9 {
		t.Errorf("window 1 wrong: %+v", ws[1])
	}
	if ws[2].objID != 2 {
		t.Errorf("window 2 wrong: %+v", ws[2])
	}
}

func TestDuplicateDeviceIDsRejected(t *testing.T) {
	d1 := &device.Device{ID: "same"}
	d2 := &device.Device{ID: "same"}
	if _, err := NewProximity([]*device.Device{d1, d2}, ProximityConfig{}); err == nil {
		t.Error("duplicate device IDs accepted")
	}
}
