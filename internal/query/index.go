// Package query is Vita's spatio-temporal query engine over generated
// datasets. The paper's Storage layer promises "featured spatial indices to
// support query processing" (§2); this package supplies that processing over
// the raw-trajectory output: spatial range × time window, kNN of objects at
// an instant, per-partition snapshot density, trajectory retrieval, and
// standing (continuous) range queries over streamed samples.
//
// The core structure is TrajectoryIndex: samples are bucketed by (floor,
// time-bucket) and each bucket is packed into an STR bulk-loaded R-tree
// (internal/index), so a query prunes first in time (bucket selection), then
// in space (R-tree descent). Per-object time-sorted series support
// interpolation between samples and trajectory retrieval.
package query

import (
	"math"
	"sort"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/index"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// Options tunes the index layout.
type Options struct {
	// BucketWidth is the seconds covered by one time bucket (default 60).
	// Smaller buckets prune time windows more sharply at the cost of more
	// R-trees.
	BucketWidth float64
	// MaxGap is the maximum seconds between consecutive samples across which
	// instant queries (kNN, density) still interpolate a position; beyond it
	// the object is considered unobserved (default 10).
	MaxGap float64
}

// DefaultOptions returns the default index layout.
func DefaultOptions() Options { return Options{BucketWidth: 60, MaxGap: 10} }

func (o Options) withDefaults() Options {
	if o.BucketWidth <= 0 {
		o.BucketWidth = 60
	}
	if o.MaxGap <= 0 {
		o.MaxGap = 10
	}
	return o
}

// sampleItem adapts one trajectory sample to the R-tree Item interface.
type sampleItem struct {
	s trajectory.Sample
}

func (it *sampleItem) Bounds() geom.BBox {
	return geom.BBox{Min: it.s.Loc.Point, Max: it.s.Loc.Point}
}

type bucketKey struct {
	floor  int
	bucket int
}

type bucket struct {
	tree *index.RTree
	objs []int // sorted unique object IDs with samples in this bucket
}

// TrajectoryIndex answers spatio-temporal queries over a fixed set of raw
// trajectory samples. Build it once with NewTrajectoryIndex; it is safe for
// concurrent reads.
type TrajectoryIndex struct {
	opts    Options
	series  map[int][]trajectory.Sample // per object, time-sorted
	buckets map[bucketKey]*bucket
	floors  []int // sorted distinct floors
	objects []int // sorted distinct object IDs
	minT    float64
	maxT    float64
	bounds  geom.BBox // tight bbox over all sample locations
}

// NewTrajectoryIndex builds the index over samples. The input slice is not
// retained or mutated.
func NewTrajectoryIndex(samples []trajectory.Sample, opts Options) *TrajectoryIndex {
	b := NewIndexBuilder(opts)
	for _, s := range samples {
		b.Add(s)
	}
	return b.Build()
}

// IndexBuilder accumulates samples incrementally and assembles a
// TrajectoryIndex at the end. It is the streaming entry point behind
// NewTrajectoryIndex: feed it row by row (Add) or one decoded column batch
// at a time (AddBatch, fed from a colstore/storage cursor), so building an
// index over a huge file never materializes the full []Sample — peak memory
// beyond the index itself is one batch. Not safe for concurrent use; Build
// may be called once.
type IndexBuilder struct {
	ix        *TrajectoryIndex
	perBucket map[bucketKey][]index.Item
	floorSet  map[int]bool
	built     bool
}

// NewIndexBuilder returns an empty builder with the given index layout.
func NewIndexBuilder(opts Options) *IndexBuilder {
	opts = opts.withDefaults()
	return &IndexBuilder{
		ix: &TrajectoryIndex{
			opts:    opts,
			series:  make(map[int][]trajectory.Sample),
			buckets: make(map[bucketKey]*bucket),
			minT:    math.Inf(1),
			maxT:    math.Inf(-1),
			bounds: geom.BBox{
				Min: geom.Pt(math.Inf(1), math.Inf(1)),
				Max: geom.Pt(math.Inf(-1), math.Inf(-1)),
			},
		},
		perBucket: make(map[bucketKey][]index.Item),
		floorSet:  make(map[int]bool),
	}
}

// Add appends one sample.
func (b *IndexBuilder) Add(s trajectory.Sample) {
	ix := b.ix
	ix.series[s.ObjID] = append(ix.series[s.ObjID], s)
	k := bucketKey{floor: s.Loc.Floor, bucket: ix.bucketOf(s.T)}
	b.perBucket[k] = append(b.perBucket[k], &sampleItem{s: s})
	b.floorSet[s.Loc.Floor] = true
	ix.minT = math.Min(ix.minT, s.T)
	ix.maxT = math.Max(ix.maxT, s.T)
	p := s.Loc.Point
	ix.bounds.Min = geom.Pt(math.Min(ix.bounds.Min.X, p.X), math.Min(ix.bounds.Min.Y, p.Y))
	ix.bounds.Max = geom.Pt(math.Max(ix.bounds.Max.X, p.X), math.Max(ix.bounds.Max.Y, p.Y))
}

// AddBatch appends every row of a decoded column batch. The batch is not
// retained — its reusable columns may be overwritten after AddBatch returns
// (row strings are shared, which is safe: strings are immutable).
func (b *IndexBuilder) AddBatch(batch *colstore.TrajectoryBatch) {
	for i := 0; i < batch.Len(); i++ {
		b.Add(batch.Row(i))
	}
}

// Build sorts the per-object series, bulk-loads the per-bucket R-trees, and
// returns the finished index. The builder must not be reused afterwards.
func (b *IndexBuilder) Build() *TrajectoryIndex {
	if b.built {
		panic("query: IndexBuilder.Build called twice")
	}
	b.built = true
	ix := b.ix
	for id, ser := range ix.series {
		sort.Slice(ser, func(i, j int) bool { return ser[i].T < ser[j].T })
		ix.objects = append(ix.objects, id)
	}
	sort.Ints(ix.objects)
	for k, items := range b.perBucket {
		bk := &bucket{tree: index.BulkLoad(items)}
		seen := make(map[int]bool)
		for _, it := range items {
			seen[it.(*sampleItem).s.ObjID] = true
		}
		bk.objs = sortedKeys(seen)
		ix.buckets[k] = bk
	}
	for fl := range b.floorSet {
		ix.floors = append(ix.floors, fl)
	}
	sort.Ints(ix.floors)
	return ix
}

func (ix *TrajectoryIndex) bucketOf(t float64) int {
	return int(math.Floor(t / ix.opts.BucketWidth))
}

// clampBuckets converts a time window to the inclusive bucket range that can
// hold data, clamped to the indexed time span so unbounded windows (0, +Inf,
// 1e18, ...) iterate only over real buckets. ok is false when the window
// misses the span entirely or the index is empty.
func (ix *TrajectoryIndex) clampBuckets(t0, t1 float64) (b0, b1 int, ok bool) {
	if len(ix.objects) == 0 || t1 < t0 || t1 < ix.minT || t0 > ix.maxT {
		return 0, 0, false
	}
	return ix.bucketOf(math.Max(t0, ix.minT)), ix.bucketOf(math.Min(t1, ix.maxT)), true
}

// sortedKeys returns the keys of an object-keyed map, sorted.
func sortedKeys[V any](set map[int]V) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Len returns the number of indexed samples.
func (ix *TrajectoryIndex) Len() int {
	n := 0
	for _, ser := range ix.series {
		n += len(ser)
	}
	return n
}

// Objects returns the indexed object IDs, sorted.
func (ix *TrajectoryIndex) Objects() []int {
	out := make([]int, len(ix.objects))
	copy(out, ix.objects)
	return out
}

// Floors returns the distinct floors with indexed samples, sorted.
func (ix *TrajectoryIndex) Floors() []int {
	out := make([]int, len(ix.floors))
	copy(out, ix.floors)
	return out
}

// Bounds returns the tight bounding box over every indexed sample's
// location; ok is false for an empty index. Workload generators use it to
// draw spatial query parameters that actually intersect the data.
func (ix *TrajectoryIndex) Bounds() (geom.BBox, bool) {
	if len(ix.objects) == 0 {
		return geom.BBox{}, false
	}
	return ix.bounds, true
}

// TimeSpan returns the [min, max] sample times; ok is false for an empty
// index.
func (ix *TrajectoryIndex) TimeSpan() (t0, t1 float64, ok bool) {
	if len(ix.objects) == 0 {
		return 0, 0, false
	}
	return ix.minT, ix.maxT, true
}

// candidateObjects returns the sorted unique object IDs with samples on floor
// (any floor when floor < 0) during [t0, t1], using bucket membership only —
// a superset of the objects actually observed in the window.
func (ix *TrajectoryIndex) candidateObjects(floor int, t0, t1 float64) []int {
	b0, b1, ok := ix.clampBuckets(t0, t1)
	if !ok {
		return nil
	}
	seen := make(map[int]bool)
	floors := ix.floors
	if floor >= 0 {
		floors = []int{floor}
	}
	for _, fl := range floors {
		for b := b0; b <= b1; b++ {
			bk, ok := ix.buckets[bucketKey{floor: fl, bucket: b}]
			if !ok {
				continue
			}
			for _, id := range bk.objs {
				seen[id] = true
			}
		}
	}
	return sortedKeys(seen)
}

// interpolate returns the object's location at instant t, linearly
// interpolating between the bracketing samples. It reports false when the
// object has no sample within MaxGap of t, or t falls outside its lifespan.
// When the bracketing samples lie on different floors (a staircase
// transition), the temporally nearer sample's location is returned verbatim
// rather than interpolating across floors.
func (ix *TrajectoryIndex) interpolate(objID int, t float64) (model.Location, bool) {
	ser := ix.series[objID]
	if len(ser) == 0 {
		return model.Location{}, false
	}
	i := sort.Search(len(ser), func(i int) bool { return ser[i].T >= t })
	switch {
	case i == 0:
		if ser[0].T-t > ix.opts.MaxGap {
			return model.Location{}, false
		}
		return ser[0].Loc, true
	case i == len(ser):
		if t-ser[len(ser)-1].T > ix.opts.MaxGap {
			return model.Location{}, false
		}
		return ser[len(ser)-1].Loc, true
	}
	a, b := ser[i-1], ser[i]
	if b.T-a.T > ix.opts.MaxGap {
		// The observation gap is too wide to trust a straight line; snap to
		// whichever endpoint is within MaxGap, if any.
		if t-a.T <= ix.opts.MaxGap {
			return a.Loc, true
		}
		if b.T-t <= ix.opts.MaxGap {
			return b.Loc, true
		}
		return model.Location{}, false
	}
	if a.Loc.Floor != b.Loc.Floor || !a.Loc.HasPoint || !b.Loc.HasPoint {
		if t-a.T <= b.T-t {
			return a.Loc, true
		}
		return b.Loc, true
	}
	if b.T == a.T {
		return b.Loc, true
	}
	f := (t - a.T) / (b.T - a.T)
	p := geom.Pt(
		a.Loc.Point.X+f*(b.Loc.Point.X-a.Loc.Point.X),
		a.Loc.Point.Y+f*(b.Loc.Point.Y-a.Loc.Point.Y),
	)
	// Attribute the partition of the temporally nearer sample; the segment
	// may cross a partition boundary but the endpoints are ground truth.
	loc := a.Loc
	if b.T-t < t-a.T {
		loc = b.Loc
	}
	return model.At(loc.Building, loc.Floor, loc.Partition, p), true
}

// PositionAt returns the object's (possibly interpolated) location at instant
// t, and false when the object is unobserved around t.
func (ix *TrajectoryIndex) PositionAt(objID int, t float64) (model.Location, bool) {
	return ix.interpolate(objID, t)
}
