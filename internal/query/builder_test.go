package query

import (
	"reflect"
	"testing"

	"vita/internal/colstore"
	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/trajectory"
)

func builderSamples() []trajectory.Sample {
	var out []trajectory.Sample
	for t := 0; t < 300; t++ {
		for o := 0; o < 8; o++ {
			out = append(out, trajectory.Sample{
				ObjID: o,
				Loc: model.At("b", o%2, []string{"lobby", "lab"}[o%2],
					geom.Pt(float64((t+3*o)%35), float64(o)+0.5)),
				T: float64(t),
			})
		}
	}
	return out
}

// TestIndexBuilderMatchesNewIndex requires an index assembled from column
// batches (the streaming cursor path) to answer every operator exactly like
// one built from the flat sample slice.
func TestIndexBuilderMatchesNewIndex(t *testing.T) {
	samples := builderSamples()
	want := NewTrajectoryIndex(samples, DefaultOptions())

	// Feed the same rows through batches of awkward sizes (including a
	// trailing partial batch) like a block cursor would deliver them.
	b := NewIndexBuilder(DefaultOptions())
	var batch colstore.TrajectoryBatch
	for i, s := range samples {
		batch.Append(s)
		if batch.Len() == 97 || i == len(samples)-1 {
			b.AddBatch(&batch)
			batch.Reset()
		}
	}
	got := b.Build()

	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if !reflect.DeepEqual(got.Objects(), want.Objects()) {
		t.Fatalf("Objects = %v, want %v", got.Objects(), want.Objects())
	}
	if !reflect.DeepEqual(got.Floors(), want.Floors()) {
		t.Fatalf("Floors = %v, want %v", got.Floors(), want.Floors())
	}

	box := geom.BBox{Min: geom.Pt(3, 0), Max: geom.Pt(20, 6)}
	if !reflect.DeepEqual(got.Range(0, box, 40, 90), want.Range(0, box, 40, 90)) {
		t.Error("Range answers differ")
	}
	if !reflect.DeepEqual(got.KNN(0, geom.Pt(10, 3), 120, 4), want.KNN(0, geom.Pt(10, 3), 120, 4)) {
		t.Error("KNN answers differ")
	}
	if !reflect.DeepEqual(got.Density(150), want.Density(150)) {
		t.Error("Density answers differ")
	}
	if !reflect.DeepEqual(got.ObjectTrajectory(3, 0, 200), want.ObjectTrajectory(3, 0, 200)) {
		t.Error("ObjectTrajectory answers differ")
	}
}

// TestIndexBuilderEmpty checks a Build with no samples behaves like an index
// over an empty slice.
func TestIndexBuilderEmpty(t *testing.T) {
	got := NewIndexBuilder(Options{}).Build()
	if got.Len() != 0 {
		t.Fatalf("empty builder Len = %d", got.Len())
	}
	if _, _, ok := got.TimeSpan(); ok {
		t.Fatal("empty builder has a time span")
	}
	if hits := got.Range(-1, geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}, 0, 1e9); len(hits) != 0 {
		t.Fatalf("empty index returned %d hits", len(hits))
	}
}

// TestIndexBuilderBuildTwice pins the single-Build contract.
func TestIndexBuilderBuildTwice(t *testing.T) {
	b := NewIndexBuilder(Options{})
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("second Build did not panic")
		}
	}()
	b.Build()
}
