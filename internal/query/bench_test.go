package query

import (
	"testing"

	"vita/internal/geom"
	"vita/internal/rng"
)

// The package benchmarks exercise each operator against a 100-object,
// 10-minute synthetic workload (~60k samples). bench_test.go at the repo
// root runs the same operators over real pipeline output.

func benchIndex(b *testing.B) *TrajectoryIndex {
	b.Helper()
	return NewTrajectoryIndex(syntheticSamples(11, 100, 600), DefaultOptions())
}

func BenchmarkIndexBuild(b *testing.B) {
	samples := syntheticSamples(11, 100, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTrajectoryIndex(samples, DefaultOptions())
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	ix := benchIndex(b)
	r := rng.New(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box := geom.BBox{Min: geom.Pt(r.Range(0, 80), r.Range(0, 30))}
		box.Max = box.Min.Add(geom.Pt(15, 10))
		t0 := r.Range(0, 500)
		_ = ix.Range(i%2, box, t0, t0+60)
	}
}

func BenchmarkKNNQuery(b *testing.B) {
	ix := benchIndex(b)
	r := rng.New(13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.KNN(i%2, geom.Pt(r.Range(0, 100), r.Range(0, 50)), r.Range(0, 600), 5)
	}
}

func BenchmarkDensityQuery(b *testing.B) {
	ix := benchIndex(b)
	r := rng.New(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Density(r.Range(0, 600))
	}
}

func BenchmarkObjectTrajectoryQuery(b *testing.B) {
	ix := benchIndex(b)
	r := rng.New(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := r.Range(0, 500)
		_ = ix.ObjectTrajectory(i%100, t0, t0+60)
	}
}

func BenchmarkContinuousFeed(b *testing.B) {
	samples := syntheticSamples(16, 100, 600)
	box := geom.BBox{Min: geom.Pt(20, 10), Max: geom.Pt(70, 40)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := NewContinuousEngine()
		for j := 0; j < 8; j++ {
			eng.Subscribe(j%2, box, func(Event) {})
		}
		eng.FeedAll(samples)
	}
}
