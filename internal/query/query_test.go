package query

import (
	"math"
	"sort"
	"testing"

	"vita/internal/geom"
	"vita/internal/model"
	"vita/internal/rng"
	"vita/internal/trajectory"
)

// syntheticSamples produces nObj random walks over two floors, one sample per
// second for dur seconds. Objects with odd IDs live on floor 1.
func syntheticSamples(seed uint64, nObj int, dur float64) []trajectory.Sample {
	r := rng.New(seed)
	var out []trajectory.Sample
	for id := 0; id < nObj; id++ {
		floor := id % 2
		x, y := r.Range(0, 100), r.Range(0, 50)
		for t := 0.0; t <= dur; t++ {
			x = clamp(x+r.Range(-1.5, 1.5), 0, 100)
			y = clamp(y+r.Range(-1.5, 1.5), 0, 50)
			part := "A"
			if x > 50 {
				part = "B"
			}
			out = append(out, trajectory.Sample{
				ObjID: id,
				Loc:   model.At("b", floor, part, geom.Pt(x, y)),
				T:     t,
			})
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

func TestRangeMatchesBruteForce(t *testing.T) {
	samples := syntheticSamples(1, 20, 300)
	ix := NewTrajectoryIndex(samples, Options{BucketWidth: 30})
	if ix.Len() != len(samples) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(samples))
	}
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		box := geom.BBox{Min: geom.Pt(r.Range(0, 90), r.Range(0, 40))}
		box.Max = box.Min.Add(geom.Pt(r.Range(5, 40), r.Range(5, 25)))
		t0 := r.Range(0, 250)
		t1 := t0 + r.Range(0, 80)
		floor := r.Intn(2)

		got := ix.Range(floor, box, t0, t1)
		var want []trajectory.Sample
		for _, s := range samples {
			if s.Loc.Floor == floor && s.T >= t0 && s.T <= t1 && box.Contains(s.Loc.Point) {
				want = append(want, s)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d samples, want %d", trial, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].ObjID > got[i].ObjID ||
				(got[i-1].ObjID == got[i].ObjID && got[i-1].T > got[i].T) {
				t.Fatal("Range results not ordered by (object, time)")
			}
		}
	}
	// All-floors variant covers everything in the window.
	all := ix.Range(-1, geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)}, 0, 300)
	if len(all) != len(samples) {
		t.Fatalf("all-floor full-window Range = %d, want %d", len(all), len(samples))
	}
}

func TestRangeObjects(t *testing.T) {
	samples := syntheticSamples(3, 10, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	objs := ix.RangeObjects(0, geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)}, 0, 60)
	want := []int{0, 2, 4, 6, 8} // even IDs are on floor 0
	if len(objs) != len(want) {
		t.Fatalf("RangeObjects = %v, want %v", objs, want)
	}
	for i := range want {
		if objs[i] != want[i] {
			t.Fatalf("RangeObjects = %v, want %v", objs, want)
		}
	}
}

func TestKNNAtSampleInstant(t *testing.T) {
	samples := syntheticSamples(4, 30, 120)
	ix := NewTrajectoryIndex(samples, Options{BucketWidth: 20})
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		// Query exactly at a sample time, so positions equal stored samples
		// and brute force needs no interpolation.
		at := float64(r.Intn(121))
		floor := r.Intn(2)
		p := geom.Pt(r.Range(0, 100), r.Range(0, 50))
		k := 1 + r.Intn(8)

		got := ix.KNN(floor, p, at, k)

		type cand struct {
			id int
			d  float64
		}
		var want []cand
		for _, s := range samples {
			if s.T == at && s.Loc.Floor == floor {
				want = append(want, cand{id: s.ObjID, d: p.Dist(s.Loc.Point)})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].id < want[j].id
		})
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: KNN returned %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ObjID != want[i].id || math.Abs(got[i].Dist-want[i].d) > 1e-9 {
				t.Fatalf("trial %d: KNN[%d] = obj %d dist %.4f, want obj %d dist %.4f",
					trial, i, got[i].ObjID, got[i].Dist, want[i].id, want[i].d)
			}
		}
	}
}

// TestUnboundedTimeWindows: windows far wider than the data span must clamp
// to the indexed buckets instead of iterating (or overflowing) bucket
// numbers.
func TestUnboundedTimeWindows(t *testing.T) {
	samples := syntheticSamples(9, 5, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	all := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)}

	if got := ix.Range(-1, all, 0, 1e18); len(got) != len(samples) {
		t.Fatalf("Range(..., 0, 1e18) = %d samples, want %d", len(got), len(samples))
	}
	if got := ix.Range(-1, all, math.Inf(-1), math.Inf(1)); len(got) != len(samples) {
		t.Fatalf("Range(..., -Inf, +Inf) = %d samples, want %d", len(got), len(samples))
	}
	// Windows entirely outside the span, or inverted, are empty.
	if got := ix.Range(-1, all, 1000, 2000); got != nil {
		t.Fatalf("out-of-span Range = %d samples", len(got))
	}
	if got := ix.Range(-1, all, 50, 10); got != nil {
		t.Fatalf("inverted-window Range = %d samples", len(got))
	}
	if got := NewTrajectoryIndex(nil, DefaultOptions()).Range(-1, all, 0, 1e18); got != nil {
		t.Fatalf("empty-index Range = %d samples", len(got))
	}
}

// TestKNNAllFloors: a negative floor ranks objects across every floor, like
// Range and Subscribe.
func TestKNNAllFloors(t *testing.T) {
	samples := syntheticSamples(10, 10, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	got := ix.KNN(-1, geom.Pt(50, 25), 30, 10)
	if len(got) != 10 {
		t.Fatalf("all-floor KNN = %d neighbors, want all 10 objects", len(got))
	}
	floors := map[int]bool{}
	for _, n := range got {
		floors[n.Loc.Floor] = true
	}
	if len(floors) != 2 {
		t.Fatalf("all-floor KNN covered floors %v, want both", floors)
	}
}

func TestInterpolation(t *testing.T) {
	mk := func(x, y, tt float64, floor int) trajectory.Sample {
		return trajectory.Sample{ObjID: 7, Loc: model.At("b", floor, "P", geom.Pt(x, y)), T: tt}
	}
	ix := NewTrajectoryIndex([]trajectory.Sample{
		mk(0, 0, 0, 0), mk(10, 20, 10, 0), // straight segment
		mk(10, 20, 60, 1), // floor change after a 50s gap
	}, Options{MaxGap: 15})

	// Midpoint of the first segment.
	loc, ok := ix.PositionAt(7, 5)
	if !ok || math.Abs(loc.Point.X-5) > 1e-9 || math.Abs(loc.Point.Y-10) > 1e-9 {
		t.Fatalf("midpoint = %v ok=%v, want (5,10)", loc, ok)
	}
	// Quarter point.
	loc, _ = ix.PositionAt(7, 2.5)
	if math.Abs(loc.Point.X-2.5) > 1e-9 || math.Abs(loc.Point.Y-5) > 1e-9 {
		t.Fatalf("quarter = %v, want (2.5,5)", loc)
	}
	// Before the first sample but within MaxGap: clamp to the first sample.
	if loc, ok = ix.PositionAt(7, -5); !ok || loc.Point.X != 0 {
		t.Fatalf("pre-start clamp = %v ok=%v", loc, ok)
	}
	// Far before the first sample: unobserved.
	if _, ok = ix.PositionAt(7, -100); ok {
		t.Fatal("object observed 100s before its first sample")
	}
	// Inside the 30s gap, near the earlier endpoint: snap to it, no
	// cross-gap interpolation.
	loc, ok = ix.PositionAt(7, 12)
	if !ok || loc.Point.X != 10 || loc.Floor != 0 {
		t.Fatalf("gap snap lo = %v ok=%v", loc, ok)
	}
	// Inside the gap, near the later endpoint: snap to the floor-1 sample.
	loc, ok = ix.PositionAt(7, 50)
	if !ok || loc.Floor != 1 {
		t.Fatalf("gap snap hi = %v ok=%v", loc, ok)
	}
	// Dead center of the gap, farther than MaxGap from both: unobserved.
	if _, ok = ix.PositionAt(7, 35); ok {
		t.Fatal("object observed mid-gap beyond MaxGap")
	}
	// Unknown object.
	if _, ok = ix.PositionAt(99, 5); ok {
		t.Fatal("unknown object observed")
	}
}

func TestDensity(t *testing.T) {
	mk := func(id int, part string, x float64) trajectory.Sample {
		return trajectory.Sample{ObjID: id, Loc: model.At("b", 0, part, geom.Pt(x, 0)), T: 10}
	}
	ix := NewTrajectoryIndex([]trajectory.Sample{
		mk(1, "A", 1), mk(2, "A", 2), mk(3, "B", 60),
	}, DefaultOptions())
	d := ix.Density(10)
	if d["A"] != 2 || d["B"] != 1 {
		t.Fatalf("Density = %v, want A:2 B:1", d)
	}
	fd := ix.FloorDensity(10)
	if fd[0] != 3 {
		t.Fatalf("FloorDensity = %v, want 0:3", fd)
	}
	// Long after the last sample everyone is unobserved.
	if d := ix.Density(1000); len(d) != 0 {
		t.Fatalf("Density(1000) = %v, want empty", d)
	}
}

func TestObjectTrajectory(t *testing.T) {
	samples := syntheticSamples(6, 5, 100)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	got := ix.ObjectTrajectory(3, 10, 20)
	if len(got) != 11 {
		t.Fatalf("ObjectTrajectory = %d samples, want 11", len(got))
	}
	for i, s := range got {
		if s.ObjID != 3 || s.T != 10+float64(i) {
			t.Fatalf("ObjectTrajectory[%d] = obj %d t %.0f", i, s.ObjID, s.T)
		}
	}
	if got := ix.ObjectTrajectory(3, 500, 600); got != nil {
		t.Fatal("out-of-span trajectory not empty")
	}
	if got := ix.ObjectTrajectory(42, 0, 100); got != nil {
		t.Fatal("unknown object trajectory not empty")
	}
}

func TestTimeSpanAndAccessors(t *testing.T) {
	empty := NewTrajectoryIndex(nil, DefaultOptions())
	if _, _, ok := empty.TimeSpan(); ok {
		t.Fatal("empty index has a time span")
	}
	samples := syntheticSamples(7, 4, 50)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	t0, t1, ok := ix.TimeSpan()
	if !ok || t0 != 0 || t1 != 50 {
		t.Fatalf("TimeSpan = [%v, %v] ok=%v", t0, t1, ok)
	}
	if got := ix.Objects(); len(got) != 4 {
		t.Fatalf("Objects = %v", got)
	}
	if got := ix.Floors(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Floors = %v", got)
	}
}

func TestContinuousRangeQuery(t *testing.T) {
	eng := NewContinuousEngine()
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	var events []Event
	sub := eng.Subscribe(0, box, func(e Event) { events = append(events, e) })

	mk := func(id int, x float64, floor int, tt float64) trajectory.Sample {
		return trajectory.Sample{ObjID: id, Loc: model.At("b", floor, "P", geom.Pt(x, 5)), T: tt}
	}
	eng.Feed(mk(1, 5, 0, 0))  // enter
	eng.Feed(mk(1, 6, 0, 1))  // move
	eng.Feed(mk(2, 50, 0, 1)) // outside: no event
	eng.Feed(mk(1, 20, 0, 2)) // exit
	eng.Feed(mk(2, 5, 1, 2))  // wrong floor: no event
	eng.Feed(mk(2, 5, 0, 3))  // enter

	want := []EventKind{Enter, Move, Exit, Enter}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, k := range want {
		if events[i].Kind != k {
			t.Fatalf("event %d = %s, want %s", i, events[i].Kind, k)
		}
	}
	if in := sub.Inside(); len(in) != 1 || in[0] != 2 {
		t.Fatalf("Inside = %v, want [2]", in)
	}

	eng.Unsubscribe(sub)
	eng.Feed(mk(2, 6, 0, 4))
	if len(events) != len(want) {
		t.Fatal("events fired after Unsubscribe")
	}

	// All-floor subscription sees both floors.
	n := 0
	eng.Subscribe(-1, box, func(Event) { n++ })
	eng.FeedAll([]trajectory.Sample{mk(3, 5, 0, 5), mk(4, 5, 1, 5)})
	if n != 2 {
		t.Fatalf("all-floor subscription saw %d events, want 2", n)
	}
}

// TestContinuousMatchesOfflineRange: replaying a dataset through a standing
// query must visit exactly the objects the offline Range query reports.
func TestContinuousMatchesOfflineRange(t *testing.T) {
	samples := syntheticSamples(8, 15, 200)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	box := geom.BBox{Min: geom.Pt(20, 10), Max: geom.Pt(70, 40)}

	eng := NewContinuousEngine()
	entered := make(map[int]bool)
	eng.Subscribe(0, box, func(e Event) {
		if e.Kind == Enter {
			entered[e.Sample.ObjID] = true
		}
	})
	eng.FeedAll(samples)

	want := ix.RangeObjects(0, box, 0, 200)
	if len(entered) != len(want) {
		t.Fatalf("continuous saw %d objects, offline range saw %d", len(entered), len(want))
	}
	for _, id := range want {
		if !entered[id] {
			t.Fatalf("object %d in offline range but never entered standing query", id)
		}
	}
}

// TestKNNMoreThanPopulation: k larger than the object count must return
// every observable object once, still nearest-first, and never pad.
func TestKNNMoreThanPopulation(t *testing.T) {
	samples := syntheticSamples(11, 4, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())

	got := ix.KNN(-1, geom.Pt(50, 25), 30, 1000)
	if len(got) > 4 {
		t.Fatalf("KNN returned %d neighbors for 4 objects", len(got))
	}
	if len(got) == 0 {
		t.Fatal("KNN returned nothing at a mid-run instant")
	}
	seen := map[int]bool{}
	for i, n := range got {
		if seen[n.ObjID] {
			t.Errorf("object %d returned twice", n.ObjID)
		}
		seen[n.ObjID] = true
		if i > 0 && got[i-1].Dist > n.Dist {
			t.Errorf("neighbors out of order at %d: %g > %g", i, got[i-1].Dist, n.Dist)
		}
	}
	// Same query restricted to one floor: only that floor's objects.
	for _, n := range ix.KNN(1, geom.Pt(50, 25), 30, 1000) {
		if n.Loc.Floor != 1 {
			t.Errorf("floor-1 kNN returned object on floor %d", n.Loc.Floor)
		}
	}
}

// TestEmptyTimeWindows: inverted and out-of-span windows must come back
// empty from every operator instead of panicking or scanning.
func TestEmptyTimeWindows(t *testing.T) {
	samples := syntheticSamples(12, 6, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)}

	for name, window := range map[string][2]float64{
		"inverted":    {40, 10},
		"before data": {-100, -50},
		"after data":  {1e6, 2e6},
	} {
		t0, t1 := window[0], window[1]
		if got := ix.Range(-1, box, t0, t1); len(got) != 0 {
			t.Errorf("%s window: Range returned %d samples", name, len(got))
		}
		if got := ix.RangeObjects(-1, box, t0, t1); len(got) != 0 {
			t.Errorf("%s window: RangeObjects returned %d objects", name, len(got))
		}
		if got := ix.ObjectTrajectory(0, t0, t1); len(got) != 0 {
			t.Errorf("%s window: ObjectTrajectory returned %d samples", name, len(got))
		}
	}

	// An empty index rejects every window.
	empty := NewTrajectoryIndex(nil, DefaultOptions())
	if got := empty.Range(-1, box, 0, 100); len(got) != 0 {
		t.Errorf("empty index Range returned %d samples", len(got))
	}
	if _, _, ok := empty.TimeSpan(); ok {
		t.Error("empty index reported a time span")
	}
}

// TestRangeUnknownFloor: floors with no data — above, below, or between the
// indexed ones — must yield empty results, not errors.
func TestRangeUnknownFloor(t *testing.T) {
	samples := syntheticSamples(13, 6, 60)
	ix := NewTrajectoryIndex(samples, DefaultOptions())
	box := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)}

	for _, floor := range []int{2, 7, -5} {
		fl := floor
		if fl < 0 {
			// Negative means "all floors" to Range; use a floor that is
			// simply absent instead.
			fl = 99
		}
		if got := ix.Range(fl, box, 0, 60); len(got) != 0 {
			t.Errorf("floor %d: Range returned %d samples", fl, len(got))
		}
		if got := ix.KNN(fl, geom.Pt(50, 25), 30, 3); len(got) != 0 {
			t.Errorf("floor %d: KNN returned %d neighbors", fl, len(got))
		}
	}
}
