package query

import (
	"sync"

	"vita/internal/geom"
	"vita/internal/trajectory"
)

// This file implements standing (continuous) range queries: the online half
// of the engine. Samples stream in one at a time — straight off the
// trajectory engine's emit callback or a CSV replay — and each standing query
// is evaluated incrementally: only the delta for the sampled object is
// recomputed, and subscribers see Enter/Move/Exit transitions rather than
// full result sets.

// EventKind classifies a continuous-query transition.
type EventKind int

const (
	// Enter fires when an object's newest sample moves it into the query
	// region.
	Enter EventKind = iota
	// Move fires when an object already in the region reports a new sample
	// still inside it.
	Move
	// Exit fires when an object previously in the region reports a sample
	// outside it (or on another floor).
	Exit
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Enter:
		return "enter"
	case Move:
		return "move"
	case Exit:
		return "exit"
	}
	return "unknown"
}

// Event is one continuous-query notification.
type Event struct {
	Kind EventKind
	// Sample is the sample that triggered the transition.
	Sample trajectory.Sample
}

// Subscription is one standing range query registered with a
// ContinuousEngine.
type Subscription struct {
	eng    *ContinuousEngine
	id     int
	floor  int
	box    geom.BBox
	fn     func(Event)
	inside map[int]trajectory.Sample // objID -> last sample inside the region
}

// Inside returns the object IDs currently inside the query region, sorted.
func (s *Subscription) Inside() []int {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return sortedKeys(s.inside)
}

// ContinuousEngine evaluates standing range queries over a stream of
// trajectory samples. It is safe for concurrent Feed/Subscribe calls;
// callbacks run synchronously inside Feed.
type ContinuousEngine struct {
	mu     sync.Mutex
	nextID int
	subs   map[int]*Subscription
}

// NewContinuousEngine returns an engine with no subscriptions.
func NewContinuousEngine() *ContinuousEngine {
	return &ContinuousEngine{subs: make(map[int]*Subscription)}
}

// Subscribe registers a standing range query over floor × box; fn is invoked
// for every Enter/Move/Exit transition and must not call back into the
// engine. A negative floor matches all floors.
func (e *ContinuousEngine) Subscribe(floor int, box geom.BBox, fn func(Event)) *Subscription {
	e.mu.Lock()
	defer e.mu.Unlock()
	sub := &Subscription{
		eng:    e,
		id:     e.nextID,
		floor:  floor,
		box:    box,
		fn:     fn,
		inside: make(map[int]trajectory.Sample),
	}
	e.nextID++
	e.subs[sub.id] = sub
	return sub
}

// Unsubscribe removes a standing query; its callback never fires again.
func (e *ContinuousEngine) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	e.mu.Lock()
	delete(e.subs, sub.id)
	e.mu.Unlock()
}

// Feed advances every standing query with one sample, firing transition
// callbacks synchronously. Samples should arrive in nondecreasing time order
// per object (the order the trajectory engine emits them).
func (e *ContinuousEngine) Feed(s trajectory.Sample) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, sub := range e.subs {
		match := (sub.floor < 0 || s.Loc.Floor == sub.floor) &&
			s.Loc.HasPoint && sub.box.Contains(s.Loc.Point)
		_, was := sub.inside[s.ObjID]
		switch {
		case match && !was:
			sub.inside[s.ObjID] = s
			sub.fn(Event{Kind: Enter, Sample: s})
		case match && was:
			sub.inside[s.ObjID] = s
			sub.fn(Event{Kind: Move, Sample: s})
		case !match && was:
			delete(sub.inside, s.ObjID)
			sub.fn(Event{Kind: Exit, Sample: s})
		}
	}
}

// FeedAll replays a batch of samples through Feed in slice order.
func (e *ContinuousEngine) FeedAll(samples []trajectory.Sample) {
	for _, s := range samples {
		e.Feed(s)
	}
}
