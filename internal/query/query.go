package query

import (
	"sort"

	"vita/internal/geom"
	"vita/internal/index"
	"vita/internal/model"
	"vita/internal/trajectory"
)

// This file implements the offline query operators. Each operator prunes in
// time first (bucket selection) and in space second (R-tree descent inside
// the surviving buckets), then verifies exact predicates on the candidates.

// Range returns every sample on floor inside box during [t0, t1], ordered by
// (object, time). A negative floor searches all floors.
func (ix *TrajectoryIndex) Range(floor int, box geom.BBox, t0, t1 float64) []trajectory.Sample {
	b0, b1, ok := ix.clampBuckets(t0, t1)
	if !ok || box.IsEmpty() {
		return nil
	}
	var out []trajectory.Sample
	floors := ix.floors
	if floor >= 0 {
		floors = []int{floor}
	}
	var buf []index.Item
	for _, fl := range floors {
		for b := b0; b <= b1; b++ {
			bk, ok := ix.buckets[bucketKey{floor: fl, bucket: b}]
			if !ok {
				continue
			}
			buf = bk.tree.Search(box, buf[:0])
			for _, it := range buf {
				s := it.(*sampleItem).s
				if s.T >= t0 && s.T <= t1 && box.Contains(s.Loc.Point) {
					out = append(out, s)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ObjID != out[j].ObjID {
			return out[i].ObjID < out[j].ObjID
		}
		return out[i].T < out[j].T
	})
	return out
}

// RangeObjects returns the distinct object IDs observed on floor inside box
// during [t0, t1], sorted.
func (ix *TrajectoryIndex) RangeObjects(floor int, box geom.BBox, t0, t1 float64) []int {
	seen := make(map[int]bool)
	for _, s := range ix.Range(floor, box, t0, t1) {
		seen[s.ObjID] = true
	}
	return sortedKeys(seen)
}

// Neighbor is one kNN result: an object, its (possibly interpolated) location
// at the query instant, and its distance to the query point.
type Neighbor struct {
	ObjID int
	Loc   model.Location
	Dist  float64
}

// KNN returns up to k objects on floor nearest to p at instant t, nearest
// first (ties break on object ID). A negative floor searches all floors.
// Object positions are linearly interpolated between the samples bracketing
// t; objects without a sample within MaxGap of t are not considered.
func (ix *TrajectoryIndex) KNN(floor int, p geom.Point, t float64, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	// Candidates: any object with a sample on the floor within MaxGap of t.
	// Bucket membership over [t-MaxGap, t+MaxGap] is a superset of those.
	cands := ix.candidateObjects(floor, t-ix.opts.MaxGap, t+ix.opts.MaxGap)
	out := make([]Neighbor, 0, len(cands))
	for _, id := range cands {
		loc, ok := ix.interpolate(id, t)
		if !ok || (floor >= 0 && loc.Floor != floor) || !loc.HasPoint {
			continue
		}
		out = append(out, Neighbor{ObjID: id, Loc: loc, Dist: p.Dist(loc.Point)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ObjID < out[j].ObjID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Density returns, per partition, the number of objects located in it at
// instant t (interpolated positions). Partitions with no objects are absent
// from the map.
func (ix *TrajectoryIndex) Density(t float64) map[string]int {
	out := make(map[string]int)
	for _, id := range ix.candidateObjects(-1, t-ix.opts.MaxGap, t+ix.opts.MaxGap) {
		loc, ok := ix.interpolate(id, t)
		if !ok || loc.Partition == "" {
			continue
		}
		out[loc.Partition]++
	}
	return out
}

// FloorDensity returns, per floor, the number of objects on it at instant t.
func (ix *TrajectoryIndex) FloorDensity(t float64) map[int]int {
	out := make(map[int]int)
	for _, id := range ix.candidateObjects(-1, t-ix.opts.MaxGap, t+ix.opts.MaxGap) {
		loc, ok := ix.interpolate(id, t)
		if !ok {
			continue
		}
		out[loc.Floor]++
	}
	return out
}

// ObjectTrajectory returns the object's samples within [t0, t1] in time
// order.
func (ix *TrajectoryIndex) ObjectTrajectory(objID int, t0, t1 float64) []trajectory.Sample {
	ser := ix.series[objID]
	lo := sort.Search(len(ser), func(i int) bool { return ser[i].T >= t0 })
	hi := sort.Search(len(ser), func(i int) bool { return ser[i].T > t1 })
	if hi <= lo {
		return nil
	}
	out := make([]trajectory.Sample, hi-lo)
	copy(out, ser[lo:hi])
	return out
}
