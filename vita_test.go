package vita

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateDefault exercises the public API end to end.
func TestGenerateDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 60
	cfg.Objects.Count = 5
	cfg.Objects.MinLifespan = 30
	cfg.Objects.MaxLifespan = 60
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trajectories.Len() == 0 || ds.RSSI.Len() == 0 || ds.Estimates.Len() == 0 {
		t.Fatalf("incomplete dataset: traj=%d rssi=%d est=%d",
			ds.Trajectories.Len(), ds.RSSI.Len(), ds.Estimates.Len())
	}
	stats, _ := EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
	if stats.N == 0 {
		t.Fatal("no evaluable estimates")
	}
	if hr := PartitionHitRate(ds.Trajectories, ds.Estimates.All()); hr <= 0 || hr > 1 {
		t.Fatalf("partition hit rate out of range: %f", hr)
	}
}

// TestIFCAccessors verifies the exported DBI texts parse back through the
// pipeline when written to a file source.
func TestIFCAccessors(t *testing.T) {
	for name, text := range map[string]string{
		"office": OfficeIFC(),
		"mall":   MallIFC(),
		"clinic": ClinicIFC(),
	} {
		if !strings.HasPrefix(text, "ISO-10303-21;") {
			t.Errorf("%s: not a STEP file", name)
		}
		if !strings.Contains(text, "IFCSPACE") {
			t.Errorf("%s: no spaces", name)
		}
	}
}

// TestLoadConfigPublic round-trips a config through the public loader.
func TestLoadConfigPublic(t *testing.T) {
	js := `{"seed": 3, "building": {"source": "synthetic:clinic"},
	        "trajectory": {"duration": 30},
	        "objects": {"count": 3, "min_lifespan": 20, "max_lifespan": 30, "max_speed": 1.0},
	        "devices": [{"floor": 0, "model": "check-point", "type": "rfid"}],
	        "positioning": {"method": "proximity"}}`
	cfg, err := LoadConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Proximity.Len() == 0 {
		t.Fatal("no proximity records from loaded config")
	}
	var buf bytes.Buffer
	if err := WriteProximityCSV(&buf, ds.Proximity.All()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "o_id,d_id,ts,te") {
		t.Errorf("unexpected CSV header: %q", buf.String()[:40])
	}
}

// TestQueryEngine drives the public query API end to end: generate a
// dataset, persist it to CSV, load it back, and answer each query type.
func TestQueryEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Trajectory.Duration = 120
	cfg.Objects.Count = 10
	cfg.Objects.MinLifespan = 100
	cfg.Objects.MaxLifespan = 120
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through CSV, as cmd/vitaquery does.
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, ds.Trajectories.All()); err != nil {
		t.Fatal(err)
	}
	samples, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != ds.Trajectories.Len() {
		t.Fatalf("CSV round trip lost samples: %d vs %d", len(samples), ds.Trajectories.Len())
	}

	ix := NewTrajectoryIndex(samples, DefaultQueryOptions())
	t0, t1, ok := ix.TimeSpan()
	if !ok || t1 <= t0 {
		t.Fatalf("TimeSpan = [%v, %v] ok=%v", t0, t1, ok)
	}
	bounds := ds.Building.Floors[0].BBox()
	if hits := ix.Range(0, bounds, t0, t1); len(hits) == 0 {
		t.Fatal("full-floor range query empty")
	}
	mid := (t0 + t1) / 2
	if nn := ix.KNN(0, bounds.Center(), mid, 3); len(nn) == 0 {
		t.Fatal("kNN query empty")
	}
	if dens := ix.Density(mid); len(dens) == 0 {
		t.Fatal("density query empty")
	}
	objs := ix.Objects()
	if len(objs) == 0 {
		t.Fatal("no indexed objects")
	}
	if ser := ix.ObjectTrajectory(objs[0], t0, t1); len(ser) == 0 {
		t.Fatal("object trajectory empty")
	}

	// Standing query over the replayed stream.
	eng := NewContinuousEngine()
	var events int
	eng.Subscribe(-1, bounds, func(e QueryEvent) {
		if e.Kind == QueryEnter {
			events++
		}
	})
	for _, s := range samples {
		eng.Feed(s)
	}
	if events == 0 {
		t.Fatal("continuous query saw no enters")
	}
}

// TestCSVExports verifies the public CSV writers emit the paper's formats.
func TestCSVExports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 30
	cfg.Objects.Count = 3
	cfg.Objects.MinLifespan = 20
	cfg.Objects.MaxLifespan = 30
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, ds.Trajectories.All()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "o_id,building,floor,partition,x,y,t") {
		t.Error("trajectory CSV header mismatch")
	}
	buf.Reset()
	if err := WriteEstimateCSV(&buf, ds.Estimates.All()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "o_id,building,floor,partition,x,y,t") {
		t.Error("estimate CSV header mismatch")
	}
}

// TestVTBExports exercises the public columnar-store surface: GenerateTo
// streaming into a DirSink, format detection, whole-file reads, and a
// predicate-pushdown scan.
func TestVTBExports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 30
	cfg.Objects.Count = 3
	cfg.Objects.MinLifespan = 20
	cfg.Objects.MaxLifespan = 30
	cfg.Positioning = PositioningConfig{}

	dir := t.TempDir()
	sink, err := NewDirSink(dir, StorageVTB)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateTo(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "trajectory.vtb")
	if f, err := DetectStorageFormat(path); err != nil || f != StorageVTB {
		t.Fatalf("DetectStorageFormat = %v, %v", f, err)
	}
	samples, format, err := ReadTrajectoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != StorageVTB || len(samples) != ds.Trajectories.Len() {
		t.Fatalf("read %d samples as %s, want %d as vtb", len(samples), format, ds.Trajectories.Len())
	}

	matched := 0
	stats, _, err := ScanTrajectoryFile(path, ScanPredicate{HasTime: true, T0: 10, T1: 20},
		func(s Sample) {
			matched++
			if s.T < 10 || s.T > 20 {
				t.Fatalf("scan leaked sample at t=%g", s.T)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if matched == 0 || stats.RowsMatched != matched {
		t.Fatalf("scan matched %d rows, stats %+v", matched, stats)
	}

	// The same samples written via the io.Writer wrapper must detect as VTB
	// and decode identically.
	var buf bytes.Buffer
	if err := WriteTrajectoryVTB(&buf, samples); err != nil {
		t.Fatal(err)
	}
	rewritten := filepath.Join(dir, "rewritten.vtb")
	if err := os.WriteFile(rewritten, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	again, _, err := ReadTrajectoryFile(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(samples) {
		t.Fatalf("rewritten file has %d samples, want %d", len(again), len(samples))
	}
	for i := range again {
		if again[i] != samples[i] {
			t.Fatalf("sample %d changed across VTB rewrite", i)
		}
	}
}

func TestTrajectoryCursorExport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trajectory.Duration = 30
	cfg.Objects.Count = 3
	cfg.Objects.MinLifespan = 20
	cfg.Objects.MaxLifespan = 30
	cfg.Positioning = PositioningConfig{}

	dir := t.TempDir()
	sink, err := NewDirSink(dir, StorageVTB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTo(cfg, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "trajectory.vtb")
	pred := ScanPredicate{HasTime: true, T0: 5, T1: 25}
	var want []Sample
	wantStats, _, err := ScanTrajectoryFile(path, pred, func(s Sample) { want = append(want, s) })
	if err != nil {
		t.Fatal(err)
	}
	cur, format, err := OpenTrajectoryCursor(path, pred)
	if err != nil {
		t.Fatal(err)
	}
	if format != StorageVTB {
		t.Fatalf("cursor format = %s, want vtb", format)
	}
	var got []Sample
	for cur.Next() {
		got = cur.Batch().AppendTo(got)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if cur.Stats() != wantStats {
		t.Fatalf("cursor stats %+v, scan stats %+v", cur.Stats(), wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d rows, scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}
