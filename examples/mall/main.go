// Mall scenario (paper §1 "customer engagements", §3.1 crowd-outliers):
// customers gather around the shops currently on sale while outliers roam;
// Bluetooth beacons deployed with the coverage model feed trilateration.
// The example then mines the busiest shops from the positioning output and
// checks them against the ground truth — the kind of indoor mobility
// analytics the toolkit exists to serve.
package main

import (
	"fmt"
	"log"
	"sort"

	"vita"
)

func main() {
	cfg := vita.DefaultConfig()
	cfg.Seed = 99
	cfg.Building = vita.BuildingConfig{Source: "synthetic:mall"}
	cfg.Devices = []vita.DeviceConfig{
		{Floor: 0, Model: "coverage", Type: "bluetooth", Count: 30},
		{Floor: 1, Model: "coverage", Type: "bluetooth", Count: 30},
	}
	cfg.Objects = vita.ObjectConfig{
		Count:        60,
		MinLifespan:  200,
		MaxLifespan:  400,
		MaxSpeed:     1.4,
		Distribution: "crowd-outliers", // hot areas = "(on sale)" shops
		ArrivalRate:  0.05,             // shoppers keep arriving
	}
	cfg.Trajectory = vita.TrajectoryConfig{Duration: 400, SampleInterval: 1}
	cfg.Positioning = vita.PositioningConfig{Method: "trilateration", SampleInterval: 2}

	ds, err := vita.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mall run: %d shoppers spawned, %d RSSI rows, %d estimates\n",
		ds.TrajectoryStats.Spawned, ds.RSSI.Len(), ds.Estimates.Len())

	// Rank partitions by estimated visits (from positioning data).
	estVisits := map[string]int{}
	for _, e := range ds.Estimates.All() {
		estVisits[rootID(e.Loc.Partition)]++
	}
	// Ground-truth visits for comparison.
	trueVisits := map[string]int{}
	for _, s := range ds.Trajectories.All() {
		trueVisits[rootID(s.Loc.Partition)]++
	}

	fmt.Println("\nbusiest areas (estimated vs ground truth):")
	for i, name := range topK(estVisits, 5) {
		fmt.Printf("  %d. %-12s est=%-6d true=%d\n", i+1, name, estVisits[name], trueVisits[name])
	}

	stats, _ := vita.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
	fmt.Printf("\ntrilateration accuracy: %s\n", stats)
}

// rootID collapses decomposed sub-partitions ("F0-ATRIUM.2") onto their
// original space.
func rootID(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '.' {
			return id[:i]
		}
	}
	return id
}

func topK(m map[string]int, k int) []string {
	keys := make([]string, 0, len(m))
	for s := range m {
		if s != "" {
			keys = append(keys, s)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}
