// Clinic scenario (paper §1 "medical services", §5 step 6 "RFID +
// proximity"): RFID readers at room entrances (check-point deployment) track
// which patients were near which rooms and for how long — symbolic proximity
// data in the (o_id, d_id, ts, te) format of paper §4.2.
package main

import (
	"fmt"
	"log"
	"os"

	"vita"
)

func main() {
	cfg := vita.DefaultConfig()
	cfg.Seed = 7
	cfg.Building = vita.BuildingConfig{Source: "synthetic:clinic"}
	cfg.Devices = []vita.DeviceConfig{
		// RFID readers at every entrance and big-room hotspot.
		{Floor: 0, Model: "check-point", Type: "rfid"},
	}
	cfg.Objects = vita.ObjectConfig{
		Count:        15,
		MinLifespan:  200,
		MaxLifespan:  500,
		MaxSpeed:     1.2,
		Distribution: "uniform",
		// Patients keep arriving at the waiting hall.
		ArrivalRate:        0.03,
		EmergingPartitions: []string{"F0-WAIT"},
	}
	cfg.Trajectory = vita.TrajectoryConfig{Duration: 500, SampleInterval: 1}
	cfg.Positioning = vita.PositioningConfig{Method: "proximity"}

	ds, err := vita.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	recs := ds.Proximity.All()
	fmt.Printf("clinic run: %d patients, %d RFID detections, %d proximity records\n",
		ds.TrajectoryStats.Spawned, ds.RSSI.Len(), len(recs))

	// Dwell time per reader: which check-points are busiest?
	dwell := map[string]float64{}
	visits := map[string]int{}
	for _, r := range recs {
		dwell[r.DeviceID] += r.Duration()
		visits[r.DeviceID]++
	}
	fmt.Println("\nper-reader activity:")
	for _, d := range ds.Devices.All() {
		if visits[d.ID] == 0 {
			continue
		}
		fmt.Printf("  %-24s visits=%-4d total dwell=%.0fs\n", d.ID, visits[d.ID], dwell[d.ID])
	}

	// Persist the proximity data in the paper's record format.
	if err := vita.WriteProximityCSV(os.Stdout, recs[:min(5, len(recs))]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(… %d more rows)\n", max(0, len(recs)-5))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
