// Quickstart: generate indoor mobility data for the synthetic two-floor
// office with the default configuration, then compare the positioning output
// against the preserved ground truth.
package main

import (
	"fmt"
	"log"

	"vita"
)

func main() {
	cfg := vita.DefaultConfig()
	cfg.Seed = 2016
	cfg.Trajectory.Duration = 300 // five simulated minutes

	ds, err := vita.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("environment: %s — %d partitions over %d floors, %d staircase(s)\n",
		ds.Building.Name, ds.Building.PartitionCount(), len(ds.Building.Floors),
		len(ds.Building.Staircases))
	fmt.Printf("deployed devices: %d\n", ds.Devices.Len())
	fmt.Printf("ground-truth samples: %d (1 per object per second)\n", ds.Trajectories.Len())
	fmt.Printf("raw RSSI measurements: %d\n", ds.RSSI.Len())
	fmt.Printf("positioning estimates (Wi-Fi fingerprinting/kNN): %d\n", ds.Estimates.Len())

	// The point of a generator that preserves ground truth (paper §1): we
	// can score the synthetic positioning data exactly.
	stats, floorMiss := vita.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
	fmt.Printf("accuracy vs ground truth: %s (floor mismatches: %d)\n", stats, floorMiss)
	fmt.Printf("partition hit rate: %.0f%%\n", 100*vita.PartitionHitRate(ds.Trajectories, ds.Estimates.All()))

	// Follow one object's day.
	objs := ds.Trajectories.Objects()
	if len(objs) > 0 {
		series := ds.Trajectories.Series(objs[0])
		fmt.Printf("\nobject %d: %d ground-truth points, from %s to %s\n",
			objs[0], len(series), series[0].Loc, series[len(series)-1].Loc)
	}
}
