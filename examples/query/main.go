// Query: generate indoor mobility data for the default office, then ask
// spatio-temporal questions of it with the query engine — the consumption
// side the paper motivates the generator with. Covers all four offline
// operators (range × time window, kNN at an instant, snapshot density,
// trajectory retrieval) plus a standing continuous range query evaluated over
// the sample stream.
package main

import (
	"fmt"
	"log"

	"vita"
	"vita/internal/geom"
)

func main() {
	cfg := vita.DefaultConfig()
	cfg.Seed = 2016
	cfg.Trajectory.Duration = 300 // five simulated minutes

	ds, err := vita.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	samples := ds.Trajectories.All()
	fmt.Printf("dataset: %d ground-truth samples from %d objects\n",
		len(samples), len(ds.Trajectories.Objects()))

	ix := vita.NewTrajectoryIndex(samples, vita.DefaultQueryOptions())
	t0, t1, _ := ix.TimeSpan()
	fmt.Printf("index: floors %v, time span [%.0f, %.0f] s\n\n", ix.Floors(), t0, t1)

	// 1. Spatial range × time window: who crossed the 12×8 m patch near the
	// floor-0 entrance during the third minute?
	box := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)}
	hits := ix.Range(0, box, 120, 180)
	fmt.Printf("range %v × [120, 180]s on floor 0: %d samples, objects %v\n",
		box, len(hits), ix.RangeObjects(0, box, 120, 180))

	// 2. kNN at an instant: the five objects nearest the middle of floor 0
	// at t=150, positions interpolated between ground-truth samples.
	center := geom.Pt(20, 10)
	fmt.Printf("\n5-NN of %s on floor 0 at t=150:\n", center)
	for i, n := range ix.KNN(0, center, 150, 5) {
		fmt.Printf("  #%d obj %-3d %5.2fm away at %s\n", i+1, n.ObjID, n.Dist, n.Loc)
	}

	// 3. Snapshot density: how crowded is each partition mid-run?
	dens := ix.Density(150)
	fmt.Printf("\npartition density at t=150 (%d occupied partitions):\n", len(dens))
	shown := 0
	for _, p := range topK(dens, 5) {
		fmt.Printf("  %-14s %d objects\n", p, dens[p])
		shown += dens[p]
	}
	fmt.Printf("  (top 5 partitions hold %d objects)\n", shown)

	// 4. Trajectory retrieval: one object's first minute.
	if objs := ix.Objects(); len(objs) > 0 {
		ser := ix.ObjectTrajectory(objs[0], 0, 60)
		if len(ser) > 0 {
			fmt.Printf("\nobject %d, first minute: %d samples, %s → %s\n",
				objs[0], len(ser), ser[0].Loc, ser[len(ser)-1].Loc)
		}
	}

	// 5. Continuous query: register a standing range query and replay the
	// stream through it — what an online deployment would do as the
	// trajectory engine emits samples.
	eng := vita.NewContinuousEngine()
	enters, exits := 0, 0
	sub := eng.Subscribe(0, box, func(e vita.QueryEvent) {
		switch e.Kind {
		case vita.QueryEnter:
			enters++
		case vita.QueryExit:
			exits++
		}
	})
	for _, s := range samples {
		eng.Feed(s)
	}
	fmt.Printf("\nstanding query over %v on floor 0: %d enters, %d exits, %d inside at end\n",
		box, enters, exits, len(sub.Inside()))
}

// topK returns the k keys with the highest counts, descending; ties break
// lexicographically.
func topK(m map[string]int, k int) []string {
	keys := make([]string, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if m[keys[j]] > m[keys[i]] || (m[keys[j]] == m[keys[i]] && keys[j] < keys[i]) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}
