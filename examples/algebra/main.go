// Algebra: compose spatio-temporal analytics from the vectorized operator
// algebra instead of the canned query operators. Generates a dataset,
// persists it as VTB, and runs three plans over the file: a pushed-down
// range scan (watch the zone maps prune blocks), the dwell-time-per-room
// analytic exactly as /v1/dwell executes it, and a time-bucketed occupancy
// roll-up no canned operator offers. docs/ARCHITECTURE.md documents the
// layer; internal/plan holds the operators.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vita"
	"vita/internal/geom"
)

func main() {
	cfg := vita.DefaultConfig()
	cfg.Seed = 2016
	cfg.Trajectory.Duration = 300 // five simulated minutes

	// Stream the run into a VTB file. The sink receives rows in global time
	// order, which is what gives the blocks tight time zone maps — and the
	// plans below their pruning.
	dir, err := os.MkdirTemp("", "vita-algebra")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sink, err := vita.NewDirSink(dir, vita.StorageVTB)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := vita.GenerateTo(cfg, sink)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "trajectory.vtb")
	fmt.Printf("dataset: %d samples → %s\n\n", ds.Trajectories.Len(), path)

	// 1. A pushed-down scan: the planner folds all three predicates into the
	// scan's block predicate, so blocks outside the window/floor/box are
	// never decoded.
	box := geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(14, 10)}
	scan, err := vita.NewPlanScan(vita.NewPlanFileSource(path)).
		Filter(vita.TimeBetween(120, 180), vita.OnFloor(0), vita.InBox(box)).
		Compile()
	if err != nil {
		log.Fatal(err)
	}
	hits, err := vita.CollectPlanSamples(scan)
	if err != nil {
		log.Fatal(err)
	}
	st := scan.Stats()
	fmt.Printf("range %v × [120, 180]s on floor 0: %d samples\n", box, len(hits))
	fmt.Printf("  pushdown: scanned %d of %d blocks (%d pruned by zone maps)\n\n",
		st.BlocksScanned, st.BlocksTotal, st.BlocksPruned)

	// 2. Dwell-time-per-room — the exact plan behind /v1/dwell: order rows by
	// (object, time), turn inter-sample gaps into per-row seconds, sum them
	// per (partition, object), then roll up per partition, counting the
	// distinct objects.
	dwell, err := vita.NewPlanScan(vita.NewPlanFileSource(path)).
		Filter(vita.TimeBetween(0, 300)).
		OrderBy(vita.Asc(vita.ColObjID), vita.Asc(vita.ColT)).
		Derive(vita.DwellGaps(vita.DefaultQueryOptions().MaxGap)).
		Aggregate(vita.GroupBy(vita.ColPartition, vita.ColObjID),
			vita.PlanSum(vita.ColVal, vita.ColVal)).
		Aggregate(vita.GroupBy(vita.ColPartition),
			vita.PlanSum(vita.ColVal, vita.ColVal), vita.PlanCount(vita.ColObjID)).
		Compile()
	if err != nil {
		log.Fatal(err)
	}
	rooms, err := vita.CollectPlanRows(dwell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dwell time per partition (whole run):")
	for _, r := range rooms {
		// Each output row carries the group key in its sample (partition) and
		// the aggregates in Val (summed seconds) and ObjID (distinct objects).
		fmt.Printf("  %-14s %7.1f s across %d objects\n",
			r.Sample.Loc.Partition, r.Val, r.Sample.ObjID)
	}

	// 3. Something no canned operator answers: peak per-minute occupancy —
	// bucket time into 60 s windows, count samples per (bucket, partition),
	// and keep the five busiest buckets.
	busiest, err := vita.NewPlanScan(vita.NewPlanFileSource(path)).
		TimeBucket(60).
		Aggregate(vita.GroupBy(vita.ColT, vita.ColPartition),
			vita.PlanCount(vita.ColObjID)).
		OrderBy(vita.Desc(vita.ColObjID), vita.Asc(vita.ColT), vita.Asc(vita.ColPartition)).
		Limit(5).
		Compile()
	if err != nil {
		log.Fatal(err)
	}
	top, err := vita.CollectPlanRows(busiest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbusiest (minute, partition) cells by sample count:")
	for _, r := range top {
		fmt.Printf("  t=[%3.0f, %3.0f)s %-14s %d samples\n",
			r.Sample.T, r.Sample.T+60, r.Sample.Loc.Partition, r.Sample.ObjID)
	}
}
