// Ground-truth workflow (paper §1, purposes (1) and (2)): generate the same
// movements once, derive positioning data at a low sampling frequency while
// preserving the underlying raw trajectory at fine granularity, and use the
// latter as ground truth to score two positioning methods head to head —
// exactly the effectiveness-evaluation loop the paper argues real indoor
// positioning data cannot support.
package main

import (
	"fmt"
	"log"

	"vita"
)

func main() {
	base := vita.DefaultConfig()
	base.Seed = 1234
	base.Trajectory = vita.TrajectoryConfig{
		Duration:       300,
		SampleInterval: 0.5, // fine-grained ground truth ...
	}
	base.Positioning.SampleInterval = 4 // ... low-frequency positioning data
	base.Devices = []vita.DeviceConfig{
		{Floor: 0, Model: "coverage", Type: "wifi", Count: 12},
		{Floor: 1, Model: "coverage", Type: "wifi", Count: 12},
	}

	fmt.Println("method comparison on identical movements (seed-pinned):")
	fmt.Printf("%-28s %8s %10s %10s %10s\n", "method", "records", "mean err", "median", "p95")
	for _, method := range []struct {
		name string
		cfg  vita.PositioningConfig
	}{
		{"trilateration", vita.PositioningConfig{Method: "trilateration", SampleInterval: 4}},
		{"fingerprint/knn", vita.PositioningConfig{Method: "fingerprint", Algorithm: "knn", SampleInterval: 4}},
		{"fingerprint/naive-bayes", vita.PositioningConfig{Method: "fingerprint", Algorithm: "bayes", SampleInterval: 4}},
	} {
		cfg := base
		cfg.Positioning = method.cfg
		ds, err := vita.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, _ := vita.EvaluateEstimates(ds.Trajectories, ds.Estimates.All())
		fmt.Printf("%-28s %8d %9.2fm %9.2fm %9.2fm\n",
			method.name, stats.N, stats.Mean, stats.Median, stats.P95)
	}

	fmt.Println("\nnote: identical seeds make every method see the same walks — the")
	fmt.Println("raw trajectory store is the ground truth the paper says real indoor")
	fmt.Println("positioning data is missing.")
}
